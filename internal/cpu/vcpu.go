// Package cpu simulates a VT-x vCPU: the two-level MMU walk (guest page
// table then EPT) performed on every guest memory access, the PML logging
// micro-ops hooked into the EPT dirty-flag logic, the paper's EPML
// extension (dual GVA/GPA logging plus posted self-IPI), hypercalls, and
// guest-mode vmread/vmwrite with VMCS shadowing.
package cpu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ept"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vmcs"
)

// Mode is the VMX CPU mode.
type Mode int

// VMX modes.
const (
	VMXRoot    Mode = iota // hypervisor
	VMXNonRoot             // guest
)

// Costs are the raw machine costs the vCPU charges to the virtual clock.
// Higher-level costs (fault handling, hypercall service time) are charged
// by the kernel and hypervisor from the cost model.
type Costs struct {
	WriteOp    time.Duration // one write access (TLB-hit path)
	ReadOp     time.Duration // one read access
	VMExit     time.Duration // world switch guest -> hypervisor
	VMEntry    time.Duration // world switch hypervisor -> guest
	PMLLog     time.Duration // CPU appends one PML buffer entry
	IRQDeliver time.Duration // posted interrupt delivery
	VMRead     time.Duration // guest vmread on shadow VMCS
	VMWrite    time.Duration // guest vmwrite on shadow VMCS
}

// Counter names exported by the vCPU.
const (
	CtrVMExits       = "vmexits"
	CtrHypercalls    = "hypercalls"
	CtrGuestFaults   = "guest_faults"
	CtrEPTViolations = "ept_violations"
	CtrPMLLogs       = "pml_logs"
	CtrPMLFullExits  = "pml_full_exits"
	CtrEPMLLogs      = "epml_logs"
	CtrEPMLFullIRQs  = "epml_full_irqs"
	CtrVMReads       = "vmreads"
	CtrVMWrites      = "vmwrites"
	CtrWriteOps      = "write_ops"
	CtrReadOps       = "read_ops"
	CtrSPPViolations = "spp_violations"
	// CtrEPMLDropped counts guest-level PML entries lost to injected
	// buffer-full IPI drops (the loss mode Bitchebe et al. measure).
	CtrEPMLDropped = "epml_entries_dropped"
)

// ErrNoAddressSpace is returned for accesses issued with no page table set.
var ErrNoAddressSpace = errors.New("cpu: no guest address space installed")

// maxFaultRetries bounds the fault->retry loop of a single access so a
// broken fault handler cannot hang the simulation.
const maxFaultRetries = 8

// VCPU is one simulated virtual CPU. The paper's setups use one vCPU per
// VM; VCPU is accordingly not safe for concurrent use.
type VCPU struct {
	ID    int
	Clock *sim.Clock
	Phys  *mem.PhysMem
	VMCS  *vmcs.VMCS
	EPT   *ept.Table

	// GuestPT is the currently installed guest address space (CR3); the
	// guest kernel switches it on context switches.
	GuestPT *pgtable.Table

	Exits ExitHandler
	Fault FaultHandler
	IRQ   IRQSink

	Costs    Costs
	Counters sim.Counters

	// Tracer, when non-nil, receives per-event records for every cost this
	// vCPU (and the layers reached through it) charges to the virtual
	// clock. Tracing only observes: it never advances the clock, so traced
	// and untraced runs are bit-identical in virtual time.
	Tracer *trace.Tracer

	// Inj, when non-nil, injects deterministic faults at this vCPU's trust
	// boundaries (and, through it, the hypervisor's and guest kernel's).
	// Like Tracer it is single-goroutine; a nil or unarmed injector leaves
	// the simulation bit-identical to one without injection at all.
	Inj *faults.Injector

	// Met, when non-nil, aggregates the same per-event observations the
	// Tracer records into the metrics registry: per-kind counters, cost
	// histograms and sampled time-series. Every site that emits a trace
	// record also observes it here with identical (kind, cost, arg), which
	// is what makes registry counters equal trace.Summarize counts on the
	// same run. Like Tracer, a nil bridge costs one branch per site.
	Met *metrics.Events

	// Prof, when non-nil, is the span-profiler tap for this vCPU's
	// goroutine: hot paths here (and in the layers reached through this
	// vCPU) open virtual-time spans on it, building the call-path tree
	// behind flamegraph/pprof exports. Like Tracer it only observes (never
	// advances the clock) and is single-goroutine; nil disables profiling
	// at zero cost.
	Prof *prof.Tap

	// Mon, when non-nil, is the online monitor plane. The vCPU itself only
	// carries the handle: event-stream feeds arrive through Met's observer
	// hook, and the checkpoint/migration drivers call Mon.Round at each
	// pre-copy round boundary. Like the other planes it only observes and
	// is single-goroutine; nil disables monitoring at zero cost.
	Mon *monitor.Monitor

	// EPMLVector is the self-IPI vector raised when the guest-level PML
	// buffer fills (EPML only).
	EPMLVector int

	// writeHooks observe every successful guest write (the page base
	// written). They model perfect instrumentation: the oracle technique
	// and the completeness verifier use them; they charge no cost. Hooks
	// run in registration order and are removed by the id AddWriteHook
	// returned, so stacked observers can detach in any order.
	writeHooks []writeHook
	nextHookID int

	// SPPCheck, when non-nil, implements Intel SPP (Sub-Page write
	// Permission): it is consulted with the target GPA of every guest
	// write, and returning false blocks the write. The paper's §III-D
	// proposes exposing SPP through OoH for secure heap allocators.
	SPPCheck func(gpa mem.GPA) bool
	// SPPViolation is invoked when SPPCheck denies a write. Returning nil
	// retries the access (the handler lifted the protection); returning
	// an error aborts the faulting write with that error.
	SPPViolation func(gva mem.GVA, gpa mem.GPA) error

	// PMLLogReads extends PML to also log pages on EPT accessed-flag 0->1
	// transitions during reads (the PML-R extension of Bitchebe et al.,
	// §VII: efficient VM working-set-size estimation).
	PMLLogReads bool

	mode Mode

	// kernelMode suppresses PML logging and guest-PT translation for
	// guest-kernel accesses to its own physical pages (ring buffers, PML
	// buffers); see KernelWriteGPA.
	kernelMode bool

	// tlb is the host-side software TLB and arm the cached VMCS arming
	// state; both are invisible to the simulation (see tlb.go for the
	// invalidation contract).
	tlb tlbState
	arm armCache
	// pmlBuf/epmlBuf cache the backing frames of the two log buffers so
	// per-logged-page buffer writes skip PhysMem's lock (see physWriteU64).
	pmlBuf  bufCache
	epmlBuf bufCache
	// epmlBufGPA is the guest-physical address of the armed EPML guest
	// buffer, captured when the extended vmwrite micro-op translates
	// GUEST_PML_ADDRESS. The walk circuit's buffer stores are guest-
	// physical writes, so they run the EPT dirty-flag protocol against
	// this frame (hypervisor-level PML must see the buffer page change,
	// or live migration ships a stale log page).
	epmlBufGPA mem.GPA

	// ctr caches sim.Counters refs for the hot-path counters, resolved
	// lazily on first increment so untouched counters stay absent from
	// snapshots exactly as before.
	ctr hotCounters
}

// hotCounters holds lazily resolved refs for counters incremented on the
// per-access and per-exit hot paths, keeping the map hash out of them.
type hotCounters struct {
	vmexits       *int64
	hypercalls    *int64
	guestFaults   *int64
	eptViolations *int64
	pmlLogs       *int64
	pmlFullExits  *int64
	epmlLogs      *int64
	vmreads       *int64
	vmwrites      *int64
	writeOps      *int64
	readOps       *int64
}

// inc bumps a lazily resolved counter ref.
func (v *VCPU) inc(p **int64, name string) {
	if *p == nil {
		*p = v.Counters.Ref(name)
	}
	**p++
}

// Mode returns the current VMX mode.
func (v *VCPU) Mode() Mode { return v.mode }

// writeHook is one registered write observer.
type writeHook struct {
	id int
	fn func(gva mem.GVA)
}

// AddWriteHook registers fn to observe every successful guest write and
// returns an id for RemoveWriteHook. Hooks fire in registration order.
func (v *VCPU) AddWriteHook(fn func(gva mem.GVA)) int {
	v.nextHookID++
	v.writeHooks = append(v.writeHooks, writeHook{id: v.nextHookID, fn: fn})
	return v.nextHookID
}

// RemoveWriteHook detaches the hook with the given id. Removal is
// position-independent: observers stacked on top of the removed one keep
// firing, so trackers and verifiers can stop in any order. Removal is
// copy-on-write so a hook may remove itself (or any other hook) while a
// dispatch is iterating a snapshot of the old slice.
func (v *VCPU) RemoveWriteHook(id int) {
	for i, h := range v.writeHooks {
		if h.id == id {
			nw := make([]writeHook, 0, len(v.writeHooks)-1)
			nw = append(nw, v.writeHooks[:i]...)
			nw = append(nw, v.writeHooks[i+1:]...)
			v.writeHooks = nw
			return
		}
	}
}

// WriteHookCount reports how many write observers are attached.
func (v *VCPU) WriteHookCount() int { return len(v.writeHooks) }

// SetAddressSpace installs a guest page table as the active address space
// and, like a real CR3 write, flushes the software TLB.
func (v *VCPU) SetAddressSpace(pt *pgtable.Table) {
	v.GuestPT = pt
	v.tlb.flush()
}

// fireWriteHooks dispatches the write observers over a stable snapshot of
// the hook slice: hooks may add or remove hooks reentrantly (removal
// reallocates, appends never alias the snapshot's prefix), and every hook
// registered at dispatch time still fires exactly once.
func (v *VCPU) fireWriteHooks(gva mem.GVA) {
	hooks := v.writeHooks
	for i := range hooks {
		hooks[i].fn(gva)
	}
}

// --- vmexit plumbing -------------------------------------------------------

// exit performs a world switch to the hypervisor, runs the exit handler and
// resumes the guest.
func (v *VCPU) exit(e *Exit) (uint64, error) {
	if v.Exits == nil {
		return 0, fmt.Errorf("cpu: unhandled vmexit %v", e.Reason)
	}
	v.inc(&v.ctr.vmexits, CtrVMExits)
	tr, ev := v.Tracer, v.Met
	var start int64
	if tr != nil || ev != nil {
		start = v.Clock.Nanos()
	}
	sp := v.Prof.Begin(prof.SubCPU, exitOp(e))
	v.Clock.Advance(v.Costs.VMExit)
	prev := v.mode
	v.mode = VMXRoot
	ret, err := v.Exits.HandleExit(v, e)
	v.mode = prev
	v.Clock.Advance(v.Costs.VMEntry)
	sp.End()
	if tr != nil || ev != nil {
		k, arg := exitTrace(e)
		now := v.Clock.Nanos()
		if tr.Enabled(k) {
			tr.Emit(trace.Record{
				Kind: k, VM: int32(v.ID), TS: start,
				Cost: now - start,
				Addr: uint64(e.GPA), Arg: arg,
			})
		}
		ev.Observe(k, now, now-start, arg)
		ev.Count(metrics.SubCPU, "vmexits_by_reason", e.Reason.String(), 1)
	}
	return ret, err
}

// exitTrace maps a vmexit to its trace kind and detail argument: hypercalls
// and the PML/EPT reasons get dedicated kinds so per-kind summaries
// attribute the full service span (world switches plus handler) without
// double counting; everything else is a generic vmexit.
func exitTrace(e *Exit) (trace.Kind, int64) {
	switch e.Reason {
	case ExitHypercall:
		return trace.KindHypercall, int64(e.Nr)
	case ExitPMLFull:
		return trace.KindPMLFull, 0
	case ExitEPTViolation:
		return trace.KindEPTViolation, 0
	}
	return trace.KindVMExit, int64(e.Reason)
}

// exitOp names the profiler span for a vmexit, mirroring exitTrace's
// kind split so profiles and per-kind trace summaries line up.
func exitOp(e *Exit) string {
	switch e.Reason {
	case ExitHypercall:
		return "hypercall"
	case ExitPMLFull:
		return "pml_full"
	case ExitEPTViolation:
		return "ept_violation"
	}
	return "vmexit"
}

// Hypercall issues a hypercall from the guest (a vmexit with ExitHypercall).
func (v *VCPU) Hypercall(nr int, args ...uint64) (uint64, error) {
	v.inc(&v.ctr.hypercalls, CtrHypercalls)
	return v.exit(&Exit{Reason: ExitHypercall, Nr: nr, Args: args})
}

// FaultRecord emits a KindFault trace record for an injected fault that
// fired at this vCPU (or at a layer reached through it). The fault itself
// is instantaneous - recovery time is charged, and traced, where recovery
// happens.
func (v *VCPU) FaultRecord(p faults.Point, addr uint64) {
	now := v.Clock.Nanos()
	if tr := v.Tracer; tr.Enabled(trace.KindFault) {
		tr.Emit(trace.Record{Kind: trace.KindFault, VM: int32(v.ID),
			TS: now, Addr: addr, Arg: int64(p)})
	}
	if ev := v.Met; ev != nil {
		ev.Observe(trace.KindFault, now, 0, int64(p))
		ev.Count(metrics.SubFaults, "injections", p.String(), 1)
	}
}

// --- guest-mode VMCS access -------------------------------------------------

// GuestVMRead executes vmread in vmx non-root mode. Shadowed fields return
// without a vmexit; others trap to the hypervisor.
func (v *VCPU) GuestVMRead(f vmcs.Field) (uint64, error) {
	v.inc(&v.ctr.vmreads, CtrVMReads)
	v.Clock.Advance(v.Costs.VMRead)
	val, err := v.VMCS.GuestRead(f)
	if errors.Is(err, vmcs.ErrExitRequired) {
		return v.exit(&Exit{Reason: ExitVMAccess})
	}
	return val, err
}

// GuestVMWrite executes vmwrite in vmx non-root mode. For the EPML field
// GUEST_PML_ADDRESS the extended micro-op first translates the guest's GPA
// to an HPA through the EPT (the paper's VMX ISA extension, §IV-D), so the
// logging circuit can write directly to RAM.
func (v *VCPU) GuestVMWrite(f vmcs.Field, val uint64) error {
	v.inc(&v.ctr.vmwrites, CtrVMWrites)
	v.Clock.Advance(v.Costs.VMWrite)
	if v.Inj.Fire(faults.VMWriteFail) {
		v.FaultRecord(faults.VMWriteFail, uint64(f))
		return fmt.Errorf("cpu: vmwrite %v: %w", f, faults.ErrTransient)
	}
	if f == vmcs.FieldGuestPMLAddress {
		hpa, err := v.translateGPA(mem.GPA(val), true)
		if err != nil {
			return fmt.Errorf("cpu: EPML buffer translation: %w", err)
		}
		v.epmlBufGPA = mem.GPA(val)
		val = uint64(hpa)
	}
	err := v.VMCS.GuestWrite(f, val)
	if errors.Is(err, vmcs.ErrExitRequired) {
		_, err = v.exit(&Exit{Reason: ExitVMAccess})
	}
	return err
}

// translateGPA resolves gpa through the EPT, raising an EPT-violation exit
// (demand allocation by the hypervisor) when unmapped.
func (v *VCPU) translateGPA(gpa mem.GPA, write bool) (mem.HPA, error) {
	for try := 0; try < maxFaultRetries; try++ {
		hpa, err := v.EPT.Translate(gpa)
		if err == nil {
			return hpa, nil
		}
		v.inc(&v.ctr.eptViolations, CtrEPTViolations)
		if _, err := v.exit(&Exit{Reason: ExitEPTViolation, GPA: gpa, Write: write}); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("cpu: EPT violation loop at %v", gpa)
}

// --- PML logging micro-ops ---------------------------------------------------

// pmlLog appends gpa (page base) to the hypervisor-level PML buffer,
// triggering a PML-full vmexit when the index underflows, exactly per the
// SDM: an invalid index exits first, then the entry is logged and the index
// decremented.
func (v *VCPU) pmlLog(gpa mem.GPA) error {
	sp := v.Prof.Begin(prof.SubCPU, "pml_log")
	defer sp.End()
	if v.Inj.Fire(faults.PMLFullExit) {
		// Spurious buffer-full exit: the hypervisor drains a partial
		// buffer. Nothing is lost - entries already logged reach the ring
		// early - but the exit and drain costs land mid-monitoring.
		v.inc(&v.ctr.pmlFullExits, CtrPMLFullExits)
		v.FaultRecord(faults.PMLFullExit, uint64(gpa))
		if _, err := v.exit(&Exit{Reason: ExitPMLFull}); err != nil {
			return err
		}
	}
	for {
		idx, err := v.VMCS.Read(vmcs.FieldPMLIndex)
		if err != nil {
			return err
		}
		if idx > vmcs.PMLResetIndex { // 0xFFFF after decrementing past 0
			v.inc(&v.ctr.pmlFullExits, CtrPMLFullExits)
			if _, err := v.exit(&Exit{Reason: ExitPMLFull}); err != nil {
				return err
			}
			continue
		}
		bufRaw, err := v.VMCS.Read(vmcs.FieldPMLAddress)
		if err != nil {
			return err
		}
		buf := mem.HPA(bufRaw)
		if err := v.physWriteU64(&v.pmlBuf, buf+mem.HPA(idx*8), uint64(gpa)); err != nil {
			return fmt.Errorf("cpu: PML buffer write: %w", err)
		}
		if err := v.VMCS.Write(vmcs.FieldPMLIndex, (idx-1)&0xFFFF); err != nil {
			return err
		}
		v.inc(&v.ctr.pmlLogs, CtrPMLLogs)
		v.Clock.Advance(v.Costs.PMLLog)
		if tr, ev := v.Tracer, v.Met; tr != nil || ev != nil {
			now := v.Clock.Nanos()
			if tr.Enabled(trace.KindPMLLog) {
				tr.Emit(trace.Record{
					Kind: trace.KindPMLLog, VM: int32(v.ID),
					TS:   now - int64(v.Costs.PMLLog),
					Cost: int64(v.Costs.PMLLog), Addr: uint64(gpa),
				})
			}
			if ev != nil {
				ev.Observe(trace.KindPMLLog, now, int64(v.Costs.PMLLog), 0)
				// Entries logged since the last drain: the index counts down
				// from PMLResetIndex, so occupancy is the distance walked.
				ev.SetGauge(metrics.SubCPU, "pml_buffer_occupancy", "",
					int64(vmcs.PMLResetIndex-idx)+1)
			}
		}
		return nil
	}
}

// epmlFields returns the VMCS that holds the EPML guest-state fields: the
// shadow VMCS when shadowing is linked (the guest armed logging through
// exit-free vmwrites), otherwise the ordinary VMCS.
func (v *VCPU) epmlFields() *vmcs.VMCS {
	if s := v.VMCS.Shadow(); s != nil {
		return s
	}
	return v.VMCS
}

// epmlLog appends gva (page base) to the guest-level PML buffer. On buffer
// full the CPU raises a posted self-IPI into the guest - no vmexit - which
// the OoH module handles by draining the buffer into the per-process ring.
func (v *VCPU) epmlLog(gva mem.GVA) error {
	sp := v.Prof.Begin(prof.SubCPU, "epml_log")
	defer sp.End()
	fields := v.epmlFields()
	for try := 0; ; try++ {
		idx, err := fields.Read(vmcs.FieldGuestPMLIndex)
		if err != nil {
			return err
		}
		if idx > vmcs.PMLResetIndex {
			if try >= maxFaultRetries {
				return errors.New("cpu: EPML buffer-full IRQ handler made no progress")
			}
			if v.Inj.Fire(faults.IPIDrop) {
				// The posted self-IPI is lost: nobody drains the full
				// buffer and the entry has nowhere to go, so it is
				// dropped - the buffer-full loss mode of Bitchebe et al.
				v.Counters.Inc(CtrEPMLDropped)
				v.FaultRecord(faults.IPIDrop, uint64(gva))
				return nil
			}
			v.Counters.Inc(CtrEPMLFullIRQs)
			tr, ev := v.Tracer, v.Met
			var start int64
			if tr != nil || ev != nil {
				start = v.Clock.Nanos()
			}
			irqSp := v.Prof.Begin(prof.SubCPU, "epml_full_irq")
			v.Clock.Advance(v.Costs.IRQDeliver)
			if v.IRQ == nil {
				return errors.New("cpu: EPML buffer full with no IRQ sink")
			}
			ev.Count(metrics.SubCPU, "posted_ipis", "", 1)
			v.IRQ.DeliverIRQ(v.EPMLVector)
			if v.Inj.Fire(faults.IPIDup) {
				// The posted interrupt arrives twice; the second delivery
				// must find an empty buffer and do no harm.
				v.FaultRecord(faults.IPIDup, uint64(gva))
				v.Clock.Advance(v.Costs.IRQDeliver)
				ev.Count(metrics.SubCPU, "posted_ipis", "", 1)
				v.IRQ.DeliverIRQ(v.EPMLVector)
			}
			now := v.Clock.Nanos()
			if tr.Enabled(trace.KindEPMLFullIRQ) {
				tr.Emit(trace.Record{
					Kind: trace.KindEPMLFullIRQ, VM: int32(v.ID), TS: start,
					Cost: now - start, Arg: int64(v.EPMLVector),
				})
			}
			ev.Observe(trace.KindEPMLFullIRQ, now, now-start, int64(v.EPMLVector))
			irqSp.End()
			continue
		}
		bufRaw, err := fields.Read(vmcs.FieldGuestPMLAddress)
		if err != nil {
			return err
		}
		buf := mem.HPA(bufRaw)
		if err := v.physWriteU64(&v.epmlBuf, buf+mem.HPA(idx*8), uint64(gva)); err != nil {
			return fmt.Errorf("cpu: EPML buffer write: %w", err)
		}
		// The store above is a guest-physical write by the walk circuit:
		// it runs the EPT dirty-flag protocol against the buffer frame, so
		// hypervisor-level PML logs the buffer page the first time it
		// changes between drains. Without this, live migration's dirty
		// rounds never resend the log page and the destination image holds
		// a stale copy of it. The frame was demand-mapped when the buffer
		// was armed, so a walk failure here cannot raise a fresh exit.
		if _, eptDirtied, err := v.EPT.WalkWrite(v.epmlBufGPA); err == nil && eptDirtied {
			if pml, _, err := v.armState(); err == nil && pml {
				if err := v.pmlLog(v.epmlBufGPA.PageFloor()); err != nil {
					return err
				}
			}
		}
		if err := fields.Write(vmcs.FieldGuestPMLIndex, (idx-1)&0xFFFF); err != nil {
			return err
		}
		v.inc(&v.ctr.epmlLogs, CtrEPMLLogs)
		v.Clock.Advance(v.Costs.PMLLog)
		if tr, ev := v.Tracer, v.Met; tr != nil || ev != nil {
			now := v.Clock.Nanos()
			if tr.Enabled(trace.KindEPMLLog) {
				tr.Emit(trace.Record{
					Kind: trace.KindEPMLLog, VM: int32(v.ID),
					TS:   now - int64(v.Costs.PMLLog),
					Cost: int64(v.Costs.PMLLog), Addr: uint64(gva),
				})
			}
			if ev != nil {
				ev.Observe(trace.KindEPMLLog, now, int64(v.Costs.PMLLog), 0)
				ev.SetGauge(metrics.SubCPU, "pml_buffer_occupancy", "guest",
					int64(vmcs.PMLResetIndex-idx)+1)
			}
		}
		return nil
	}
}

// epmlArmed reports whether guest-level logging is currently enabled.
func (v *VCPU) epmlArmed() (bool, error) {
	if !v.VMCS.EPMLEnabled() {
		return false, nil
	}
	val, err := v.epmlFields().Read(vmcs.FieldGuestPMLEnable)
	return val != 0, err
}

// --- guest memory accesses ----------------------------------------------------

// walkForWrite resolves gva for a write access, raising guest #PF and EPT
// violations as needed, setting guest A/D flags and EPT A/D flags, and
// firing the PML/EPML logging micro-ops on dirty transitions.
func (v *VCPU) walkForWrite(gva mem.GVA) (mem.HPA, error) {
	if v.GuestPT == nil {
		return 0, ErrNoAddressSpace
	}
	sp := v.Prof.Begin(prof.SubCPU, "page_walk")
	defer sp.End()
	for try := 0; try < maxFaultRetries; try++ {
		slot, pte, ok := v.GuestPT.LookupSlot(gva)
		if !ok || !pte.Writable() {
			v.inc(&v.ctr.guestFaults, CtrGuestFaults)
			if v.Fault == nil {
				return 0, fmt.Errorf("cpu: unhandled #PF (write) at %v", gva)
			}
			if err := v.tracedFault(gva, true); err != nil {
				return 0, err
			}
			continue
		}
		gpa := pte.GPA() + mem.GPA(gva.PageOffset())
		// Sub-page permission check precedes the dirty-flag protocol: a
		// blocked write must not dirty the page.
		if v.SPPCheck != nil && !v.SPPCheck(gpa) {
			v.Counters.Inc(CtrSPPViolations)
			if v.SPPViolation == nil {
				return 0, fmt.Errorf("cpu: unhandled SPP violation at %v", gva)
			}
			tr, ev := v.Tracer, v.Met
			var start int64
			if tr != nil || ev != nil {
				start = v.Clock.Nanos()
			}
			if err := v.SPPViolation(gva, gpa); err != nil {
				return 0, err
			}
			now := v.Clock.Nanos()
			if tr.Enabled(trace.KindSPPViolation) {
				tr.Emit(trace.Record{
					Kind: trace.KindSPPViolation, VM: int32(v.ID), TS: start,
					Cost: now - start, Addr: uint64(gva),
				})
			}
			ev.Observe(trace.KindSPPViolation, now, now-start, 0)
			continue
		}
		hpa, eptDirtied, err := v.EPT.WalkWrite(gpa)
		if err != nil {
			v.inc(&v.ctr.eptViolations, CtrEPTViolations)
			if _, err := v.exit(&Exit{Reason: ExitEPTViolation, GPA: gpa, Write: true}); err != nil {
				return 0, err
			}
			continue
		}
		// A/D flags commit only once the full two-level walk succeeds, as
		// on real hardware; setting them earlier would lose the dirty 0->1
		// transition across an EPT-violation retry. The paper's EPML
		// extension logs the GVA on the guest-PTE dirty transition ("we
		// modify the page walk circuit to make the processor log the GVA").
		guestDirtied := !pte.Dirty()
		slot.OrFlags(pgtable.FlagAccessed | pgtable.FlagDirty)
		pml, _, err := v.armState()
		if err != nil {
			return 0, err
		}
		if eptDirtied && pml {
			if err := v.pmlLog(gpa.PageFloor()); err != nil {
				return 0, err
			}
		}
		// Re-read the arming state after pmlLog: a PML-full drain writes
		// the VMCS, which bumps its generation and refreshes the cache.
		_, armed, err := v.armState()
		if err != nil {
			return 0, err
		}
		if guestDirtied && armed {
			if err := v.epmlLog(gva.PageFloor()); err != nil {
				return 0, err
			}
		}
		v.tlbFill(gva, slot)
		v.fireWriteHooks(gva.PageFloor())
		return hpa, nil
	}
	return 0, fmt.Errorf("cpu: fault loop on write at %v", gva)
}

// tracedFault dispatches a guest #PF to the kernel's fault handler,
// recording the full service span (the envelope around the narrower
// demand/soft-dirty/ufd kinds the kernel emits).
func (v *VCPU) tracedFault(gva mem.GVA, write bool) error {
	tr, ev := v.Tracer, v.Met
	var start int64
	if tr != nil || ev != nil {
		start = v.Clock.Nanos()
	}
	sp := v.Prof.Begin(prof.SubCPU, "guest_pf")
	if err := v.Fault.HandlePageFault(v, gva, write); err != nil {
		sp.End()
		return err
	}
	sp.End()
	arg := int64(0)
	if write {
		arg = 1
	}
	now := v.Clock.Nanos()
	if tr.Enabled(trace.KindGuestPF) {
		tr.Emit(trace.Record{
			Kind: trace.KindGuestPF, VM: int32(v.ID), TS: start,
			Cost: now - start, Addr: uint64(gva), Arg: arg,
		})
	}
	ev.Observe(trace.KindGuestPF, now, now-start, arg)
	return nil
}

// walkForRead resolves gva for a read access.
func (v *VCPU) walkForRead(gva mem.GVA) (mem.HPA, error) {
	if v.GuestPT == nil {
		return 0, ErrNoAddressSpace
	}
	sp := v.Prof.Begin(prof.SubCPU, "page_walk")
	defer sp.End()
	for try := 0; try < maxFaultRetries; try++ {
		slot, pte, ok := v.GuestPT.LookupSlot(gva)
		if !ok {
			v.inc(&v.ctr.guestFaults, CtrGuestFaults)
			if v.Fault == nil {
				return 0, fmt.Errorf("cpu: unhandled #PF (read) at %v", gva)
			}
			if err := v.tracedFault(gva, false); err != nil {
				return 0, err
			}
			continue
		}
		gpa := pte.GPA() + mem.GPA(gva.PageOffset())
		hpa, accessed, err := v.EPT.WalkRead(gpa)
		if err != nil {
			v.inc(&v.ctr.eptViolations, CtrEPTViolations)
			if _, err := v.exit(&Exit{Reason: ExitEPTViolation, GPA: gpa, Write: false}); err != nil {
				return 0, err
			}
			continue
		}
		// The accessed flag commits only once the full two-level walk
		// succeeds, matching the write path's A/D protocol: an
		// EPT-violation retry must not leave a premature accessed bit.
		slot.OrFlags(pgtable.FlagAccessed)
		if accessed && v.PMLLogReads && v.VMCS.PMLEnabled() {
			if err := v.pmlLog(gpa.PageFloor()); err != nil {
				return 0, err
			}
		}
		v.tlbFill(gva, slot)
		return hpa, nil
	}
	return 0, fmt.Errorf("cpu: fault loop on read at %v", gva)
}

// Write stores b at gva in the current guest address space, splitting the
// access at page boundaries like real hardware does for the A/D protocol.
func (v *VCPU) Write(gva mem.GVA, b []byte) error {
	for len(b) > 0 {
		n := int(mem.PageSize - gva.PageOffset())
		if n > len(b) {
			n = len(b)
		}
		v.inc(&v.ctr.writeOps, CtrWriteOps)
		v.Clock.Advance(v.Costs.WriteOp)
		if fr, ok := v.tlbWriteFrame(gva); ok {
			// A TLB hit proves no A/D, PML, EPML or SPP transition is
			// possible (see tlb.go), so the walk reduces to the zero-cost
			// write observers plus a write into the cached host frame,
			// bypassing PhysMem's lock and lookup. The walk span is still
			// emitted - its virtual time is zero either way - and the hooks
			// fire inside it, keeping profiles identical to the slow path.
			sp := v.Prof.Begin(prof.SubCPU, "page_walk")
			v.fireWriteHooks(gva.PageFloor())
			sp.End()
			off := gva.PageOffset()
			if d := fr.Data(); d != nil {
				copy(d[off:], b[:n])
			} else if !fr.Put(off, b[:n]) {
				copy(v.Phys.Materialize(fr)[off:], b[:n])
			}
		} else {
			hpa, err := v.walkForWrite(gva)
			if err != nil {
				return err
			}
			if fr, ok := v.tlbFilledFrame(gva, hpa); ok {
				off := gva.PageOffset()
				if d := fr.Data(); d != nil {
					copy(d[off:], b[:n])
				} else if !fr.Put(off, b[:n]) {
					copy(v.Phys.Materialize(fr)[off:], b[:n])
				}
			} else if err := v.Phys.Write(hpa, b[:n]); err != nil {
				return err
			}
		}
		gva = gva.Add(uint64(n))
		b = b[n:]
	}
	return nil
}

// Read loads len(b) bytes from gva into b.
func (v *VCPU) Read(gva mem.GVA, b []byte) error {
	for len(b) > 0 {
		n := int(mem.PageSize - gva.PageOffset())
		if n > len(b) {
			n = len(b)
		}
		v.inc(&v.ctr.readOps, CtrReadOps)
		v.Clock.Advance(v.Costs.ReadOp)
		if fr, ok := v.tlbReadFrame(gva); ok {
			sp := v.Prof.Begin(prof.SubCPU, "page_walk")
			sp.End()
			fr.ReadAt(b[:n], gva.PageOffset())
		} else {
			hpa, err := v.walkForRead(gva)
			if err != nil {
				return err
			}
			if fr, ok := v.tlbFilledFrame(gva, hpa); ok {
				fr.ReadAt(b[:n], gva.PageOffset())
			} else if err := v.Phys.Read(hpa, b[:n]); err != nil {
				return err
			}
		}
		gva = gva.Add(uint64(n))
		b = b[n:]
	}
	return nil
}

// WriteU64 stores a 64-bit value at gva (must not cross a page boundary).
func (v *VCPU) WriteU64(gva mem.GVA, val uint64) error {
	var b [8]byte
	b[0] = byte(val)
	b[1] = byte(val >> 8)
	b[2] = byte(val >> 16)
	b[3] = byte(val >> 24)
	b[4] = byte(val >> 32)
	b[5] = byte(val >> 40)
	b[6] = byte(val >> 48)
	b[7] = byte(val >> 56)
	return v.Write(gva, b[:])
}

// ReadU64 loads a 64-bit value from gva.
func (v *VCPU) ReadU64(gva mem.GVA) (uint64, error) {
	var b [8]byte
	if err := v.Read(gva, b[:]); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// --- guest-kernel physical accesses -------------------------------------------

// KernelWriteGPA writes guest-kernel data at a guest physical address,
// bypassing the user page table and, deliberately, the PML logging hooks:
// the kernel's own bookkeeping writes (ring drains, buffer resets) must not
// pollute the tracked dirty set.
func (v *VCPU) KernelWriteGPA(gpa mem.GPA, b []byte) error {
	for len(b) > 0 {
		n := int(mem.PageSize - gpa.PageOffset())
		if n > len(b) {
			n = len(b)
		}
		hpa, err := v.translateGPA(gpa, true)
		if err != nil {
			return err
		}
		if err := v.Phys.Write(hpa, b[:n]); err != nil {
			return err
		}
		gpa += mem.GPA(n)
		b = b[n:]
	}
	return nil
}

// KernelReadGPA reads guest-kernel data at a guest physical address.
func (v *VCPU) KernelReadGPA(gpa mem.GPA, b []byte) error {
	for len(b) > 0 {
		n := int(mem.PageSize - gpa.PageOffset())
		if n > len(b) {
			n = len(b)
		}
		hpa, err := v.translateGPA(gpa, false)
		if err != nil {
			return err
		}
		if err := v.Phys.Read(hpa, b[:n]); err != nil {
			return err
		}
		gpa += mem.GPA(n)
		b = b[n:]
	}
	return nil
}

// KernelReadU64GPA reads one 64-bit word at a guest physical address.
func (v *VCPU) KernelReadU64GPA(gpa mem.GPA) (uint64, error) {
	var b [8]byte
	if err := v.KernelReadGPA(gpa, b[:]); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}
