// Package simcache holds the global enable switches for the simulator's
// host-side acceleration caches: the vCPU software TLB, the page table's
// incremental GPA->GVA reverse index, the vCPU's cached VMCS arming
// state, and workload host-compute memoization.
//
// The caches are pure host-side optimizations: with the switches on or off
// the simulation must produce byte-identical traces, metrics snapshots and
// profiles (the cross-check suite in internal/experiments pins this). The
// switches exist so that equivalence is testable and so a regression can be
// bisected to one cache; production runs leave everything enabled.
//
// The switches are plain package-level booleans, matching the simulator's
// single-goroutine-per-machine discipline: they are read on hot paths with
// no synchronization and must only be toggled while no machine is running
// (tests toggle them between runs, restoring via defer).
package simcache

var (
	// tlb enables the per-vCPU GVA translation cache (internal/cpu).
	tlb = true
	// reverseIndex enables pgtable's incremental GPA->GVA index, making
	// ReverseLookup O(1) host work instead of an O(present-pages) scan.
	reverseIndex = true
	// armCache enables the vCPU's cached VMCS arming state (PMLEnabled /
	// epmlArmed), refreshed via VMCS generation counters instead of being
	// re-read from the field storage on every guest write.
	armCache = true
	// workloadMemo enables workload-level host-compute memoization: kernels
	// whose input region is immutable after Setup (string-match, histogram)
	// cache the pure function of that input across passes. Guest memory
	// reads still execute every pass (virtual clock, accessed bits and read
	// logging are unchanged); only redundant host arithmetic is skipped.
	workloadMemo = true
)

// TLBEnabled reports whether the vCPU software TLB is on.
func TLBEnabled() bool { return tlb }

// ReverseIndexEnabled reports whether pgtable's incremental reverse index
// is consulted by ReverseLookup.
func ReverseIndexEnabled() bool { return reverseIndex }

// ArmCacheEnabled reports whether the vCPU caches VMCS arming state.
func ArmCacheEnabled() bool { return armCache }

// WorkloadMemoEnabled reports whether workloads may memoize host compute
// over Setup-immutable input regions.
func WorkloadMemoEnabled() bool { return workloadMemo }

// SetTLB toggles the software TLB. Only call while no machine is running.
func SetTLB(on bool) { tlb = on }

// SetReverseIndex toggles the reverse index. Only call while no machine is
// running.
func SetReverseIndex(on bool) { reverseIndex = on }

// SetArmCache toggles the cached arming state. Only call while no machine
// is running.
func SetArmCache(on bool) { armCache = on }

// SetWorkloadMemo toggles workload host-compute memoization. Only call
// while no machine is running.
func SetWorkloadMemo(on bool) { workloadMemo = on }

// DisableAll turns every cache off and returns a function restoring the
// previous state; tests use it as `defer simcache.DisableAll()()`.
func DisableAll() (restore func()) {
	prevTLB, prevRev, prevArm, prevMemo := tlb, reverseIndex, armCache, workloadMemo
	tlb, reverseIndex, armCache, workloadMemo = false, false, false, false
	return func() {
		tlb, reverseIndex, armCache, workloadMemo = prevTLB, prevRev, prevArm, prevMemo
	}
}
