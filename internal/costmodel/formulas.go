package costmodel

import "time"

// EventCounts carries the raw event counts a run of Tracker+Tracked
// produced. The formula engine turns these into the paper's estimated
// execution times (Formulas 1-4), which Table IV compares against the
// simulator's measured virtual times.
type EventCounts struct {
	MemBytes uint64 // Tracked memory size (selects the cost curves)

	ContextSwitches int64 // N in Formula 4
	KernelFaults    int64 // #PF handled in kernel space (/proc, ufd, demand paging)
	UserFaults      int64 // #PF handled in userspace (ufd)
	VMExits         int64 // SPML: world switches on the critical path
	VMReads         int64 // EPML: vmread instructions
	VMWrites        int64 // EPML: vmwrite instructions

	ClearRefsCalls   int64 // /proc: echo 4 > clear_refs invocations
	PagemapWalks     int64 // /proc & SPML: full userspace PT walks
	PagesWalked      int64 // pages visited across all pagemap walks
	ReverseMapLookup int64 // SPML: GPA->GVA lookups performed
	RBEntriesCopied  int64 // SPML & EPML: ring buffer entries copied
	EnableLogCalls   int64 // SPML: enable_logging hypercalls (schedule-in)
	DisableLogCalls  int64 // SPML: disable_logging hypercalls (schedule-out)
	InitCalls        int64 // technique initializations (PML init, ufd register, ...)
	DeactCalls       int64 // technique deactivations
	WPIoctls         int64 // ufd: write_protect/write_unprotect ioctls
}

// Estimate is the output of the formula engine for one run.
type Estimate struct {
	Technique Technique
	// ECx is E(C_x): the tracking technique's own execution time
	// (Formula 2). Per Formula 1, E(C_tker) = E(C_x) + E(C_p), with the
	// interaction term I(C_x, C_p) experimentally negligible.
	ECx time.Duration
	// Interaction is I(C_x, C_tked): page faults, vmexits etc. that the
	// technique inflicts on Tracked (Formula 4).
	Interaction time.Duration
}

// Tracker returns E(C_tker) given the tracking-routine time E(C_p)
// (Formula 1 with I(C_x,C_p) ~= 0).
func (e Estimate) Tracker(ecp time.Duration) time.Duration { return e.ECx + ecp }

// Tracked returns E(C_tked_tker) given the unmonitored execution time of
// Tracked and the tracking-routine time (Formula 3).
func (e Estimate) Tracked(ideal, ecp time.Duration) time.Duration {
	return ideal + e.Tracker(ecp) + e.Interaction
}

// Estimate applies Formulas 2 and 4 for the given technique to the counts.
func (m *Model) Estimate(t Technique, c EventCounts) Estimate {
	est := Estimate{Technique: t}
	perFaultK := m.PFHKernel.PerPage(c.MemBytes)
	perFaultU := m.PFHUser.PerPage(c.MemBytes)
	perWalk := m.PTWalkUser.PerPage(c.MemBytes)
	perRev := m.ReverseMap.PerPage(c.MemBytes)
	perRB := m.RBCopy.PerPage(c.MemBytes)
	perDisable := m.DisablePMLLog.Total(c.MemBytes) // per-call cost

	switch t {
	case Oracle:
		// E(C_oracle) = 0 by definition.
	case Proc:
		// E(C_/proc) = E(clear_refs) + E(PT walk in userspace).
		est.ECx = time.Duration(c.ClearRefsCalls)*m.ClearRefs.Total(c.MemBytes) +
			time.Duration(c.PagesWalked)*perWalk
		// I(C_/proc, C_tked) = E(PFH kernel) + E(context switch).
		est.Interaction = time.Duration(c.KernelFaults)*perFaultK +
			time.Duration(c.ContextSwitches)*m.ContextSwitch
	case Ufd:
		// E(C_ufd) = E(ioctl wp) + E(ioctl register) + E(ioctl unprotect).
		est.ECx = time.Duration(c.WPIoctls)*m.IoctlWriteProtectPerPage +
			time.Duration(c.InitCalls)*m.IoctlInitPML/8 // register is a light ioctl
		// I(C_ufd, C_tked) = E(PFH userspace) + E(context switch).
		est.Interaction = time.Duration(c.UserFaults)*perFaultU +
			time.Duration(c.KernelFaults)*perFaultK +
			time.Duration(c.ContextSwitches)*m.ContextSwitch
	case SPML:
		// E(C_SPML) = E(RB copy) + E(reverse mapping) + E(enable/disable).
		est.ECx = time.Duration(c.RBEntriesCopied)*perRB +
			time.Duration(c.ReverseMapLookup)*perRev +
			time.Duration(c.PagesWalked)*perWalk +
			time.Duration(c.EnableLogCalls)*m.EnablePMLLog +
			time.Duration(c.DisableLogCalls)*perDisable +
			time.Duration(c.InitCalls)*(m.HypInitPML+m.IoctlInitPML) +
			time.Duration(c.DeactCalls)*(m.HypDeactPML+m.IoctlDeactPML)
		// I(C_SPML, C_tked) = E(vmexits) + N x E(vmread/vmwrite).
		est.Interaction = time.Duration(c.VMExits)*(m.VMExit+m.VMEntry) +
			time.Duration(c.ContextSwitches)*(m.VMRead+m.VMWrite) +
			time.Duration(c.ContextSwitches)*m.ContextSwitch
	case EPML:
		// E(C_EPML) = E(RB copy) + E(enable/disable).
		est.ECx = time.Duration(c.RBEntriesCopied)*perRB +
			time.Duration(c.VMReads)*m.VMRead +
			time.Duration(c.VMWrites)*m.VMWrite +
			time.Duration(c.InitCalls)*(m.HypInitShadow+m.IoctlInitPML) +
			time.Duration(c.DeactCalls)*(m.HypDeactShadow+m.IoctlDeactPML)
		// I(C_EPML, C_tked) = N x E(vmread/vmwrite).
		est.Interaction = time.Duration(c.ContextSwitches)*(m.VMRead+m.VMWrite) +
			time.Duration(c.ContextSwitches)*m.ContextSwitch
	}
	return est
}

// Accuracy returns the paper's accuracy measure between an estimated and a
// measured duration: 1 - |est-meas|/meas, as a percentage in [0, 100].
func Accuracy(estimated, measured time.Duration) float64 {
	if measured == 0 {
		if estimated == 0 {
			return 100
		}
		return 0
	}
	diff := float64(estimated - measured)
	if diff < 0 {
		diff = -diff
	}
	acc := (1 - diff/float64(measured)) * 100
	if acc < 0 {
		acc = 0
	}
	return acc
}
