package costmodel

import (
	"math"
	"time"
)

// MiB is one mebibyte, the unit of Table V(b)'s size axis.
const MiB = 1 << 20

// Curve is a memory-size-dependent cost: the paper samples each such metric
// at seven Tracked memory sizes (1 MB .. 1 GB, Table Vb). Between samples we
// interpolate log-linearly in size (costs grow smoothly but super- or
// sub-linearly in memory, e.g. reverse mapping). Below the first sample the
// cost scales proportionally with size from the first point; above the last
// sample it extrapolates along the final segment's linear slope, clamped at
// zero so a decreasing final segment can never yield a negative cost.
type Curve struct {
	sizesMB []float64       // sample sizes in MiB, ascending
	costs   []time.Duration // total cost at each sample size
}

// NewCurve builds a curve from parallel slices of sizes (MiB) and total
// costs. It panics on malformed input: curves are package-internal tables.
func NewCurve(sizesMB []float64, costs []time.Duration) Curve {
	if len(sizesMB) != len(costs) || len(sizesMB) < 2 {
		panic("costmodel: malformed curve")
	}
	for i := 1; i < len(sizesMB); i++ {
		if sizesMB[i] <= sizesMB[i-1] {
			panic("costmodel: curve sizes not ascending")
		}
	}
	return Curve{sizesMB: sizesMB, costs: costs}
}

// Total returns the interpolated total cost of the metric for a Tracked
// memory of the given size in bytes.
func (c Curve) Total(sizeBytes uint64) time.Duration {
	if sizeBytes == 0 {
		return 0
	}
	mb := float64(sizeBytes) / MiB
	n := len(c.sizesMB)
	switch {
	case mb <= c.sizesMB[0]:
		// Scale linearly below the first sample: cost per MiB is constant.
		return time.Duration(float64(c.costs[0]) * mb / c.sizesMB[0])
	case mb >= c.sizesMB[n-1]:
		// Extrapolate linearly above the last sample using the last
		// segment's slope. A negative slope (a metric that got cheaper at
		// the largest sample) would eventually cross zero and produce a
		// negative cost, which panics sim.Clock.Advance - clamp at zero.
		last, prev := float64(c.costs[n-1]), float64(c.costs[n-2])
		slope := (last - prev) / (c.sizesMB[n-1] - c.sizesMB[n-2])
		cost := last + slope*(mb-c.sizesMB[n-1])
		if cost < 0 {
			return 0
		}
		return time.Duration(cost)
	}
	// Log-linear interpolation between bracketing samples.
	i := 1
	for c.sizesMB[i] < mb {
		i++
	}
	x0, x1 := math.Log(c.sizesMB[i-1]), math.Log(c.sizesMB[i])
	y0, y1 := math.Log(float64(c.costs[i-1])), math.Log(float64(c.costs[i]))
	t := (math.Log(mb) - x0) / (x1 - x0)
	return time.Duration(math.Exp(y0 + t*(y1-y0)))
}

// PerPage returns the metric's cost per 4 KiB page when the Tracked memory
// is sizeBytes: Total(size) divided by the page count at that size. The
// simulator charges this per observed event (fault, page walked, ...), so
// partial working sets cost proportionally less than the closed-form total.
func (c Curve) PerPage(sizeBytes uint64) time.Duration {
	if sizeBytes == 0 {
		return 0
	}
	pages := (sizeBytes + 4095) / 4096
	return c.Total(sizeBytes) / time.Duration(pages)
}

// Model holds every calibrated cost used by the simulator. The Default
// model reproduces the paper's Table V; tests and ablation benches build
// variants.
type Model struct {
	// Constant metrics (Table Va), paper values in µs.
	ContextSwitch  time.Duration // M1: 0.315 µs
	IoctlInitPML   time.Duration // M3: 5,651 µs
	IoctlDeactPML  time.Duration // M4: 2,816 µs
	VMRead         time.Duration // M7: 0.936 µs
	VMWrite        time.Duration // M8: 0.801 µs
	HypInitPML     time.Duration // M9: 5,495 µs
	HypInitShadow  time.Duration // M10: 5,878 µs
	HypDeactPML    time.Duration // M11: 2,060 µs
	HypDeactShadow time.Duration // M12: 2,755 µs
	EnablePMLLog   time.Duration // M13: 0.3 µs

	// Memory-dependent metrics (Table Vb), totals at 1MB..1GB.
	ClearRefs     Curve // M15
	PTWalkUser    Curve // M16
	PFHKernel     Curve // M5
	PFHUser       Curve // M6
	DisablePMLLog Curve // M14 (per-call cost, grows mildly with size)
	RBCopy        Curve // M18
	ReverseMap    Curve // M17

	// ufd write_protect/unprotect ioctl (M2): the paper reports it as
	// memory dependent but does not tabulate it; it is dominated by one
	// syscall per faulted page. We charge a constant per-page cost.
	IoctlWriteProtectPerPage time.Duration

	// Baseline execution costs of the simulated machine (not in Table V;
	// calibrated so Table I's overhead percentages land near the paper's).
	WritePerPageOp time.Duration // one tracked store touching a page (TLB-hit path)
	ReadPerPageOp  time.Duration // one tracked load touching a page
	VMExit         time.Duration // raw world switch guest->hypervisor
	VMEntry        time.Duration // raw world switch hypervisor->guest
	PMLLogEntry    time.Duration // CPU appending one entry to a PML buffer
	IRQDelivery    time.Duration // posted self-IPI delivery to the guest
	DiskWritePage  time.Duration // checkpoint image write of one 4 KiB page
	EPTViolation   time.Duration // hypervisor servicing one demand allocation
	KernelPageOp   time.Duration // guest kernel touching one page (clear_refs walks etc.)
	DemandFault    time.Duration // guest kernel servicing an ordinary demand-paging fault

	// Workload compute costs: the virtual time an application spends
	// processing data beyond the raw memory moves. Calibrated to
	// Phoenix-like throughput (~100 MB/s per core for pointer-heavy
	// MapReduce kernels) and ~1 GFLOP/s for numeric kernels.
	ComputePerByte time.Duration
	ComputePerFlop time.Duration
}

// Default returns the model calibrated to the paper's Table V measurements.
func Default() *Model {
	sizes := []float64{1, 10, 50, 100, 250, 500, 1024}
	ms := func(vals ...float64) Curve {
		costs := make([]time.Duration, len(vals))
		for i, v := range vals {
			costs[i] = milliseconds(v)
		}
		return NewCurve(sizes, costs)
	}
	return &Model{
		ContextSwitch:  microseconds(0.315),
		IoctlInitPML:   microseconds(5651),
		IoctlDeactPML:  microseconds(2816),
		VMRead:         microseconds(0.936),
		VMWrite:        microseconds(0.801),
		HypInitPML:     microseconds(5495),
		HypInitShadow:  microseconds(5878),
		HypDeactPML:    microseconds(2060),
		HypDeactShadow: microseconds(2755),
		EnablePMLLog:   microseconds(0.3),

		ClearRefs:     ms(0.032, 0.0912, 0.174, 0.288, 0.613, 1.153, 2.234),
		PTWalkUser:    ms(1.912, 14.479, 41.832, 82.289, 161.973, 307.109, 594.187),
		PFHKernel:     ms(0.003, 0.3, 1.68, 3.34, 8.39, 16.79, 33.58),
		PFHUser:       ms(2.5, 27.3, 152.3, 347.1, 882.8, 1585, 3483),
		DisablePMLLog: ms(0.042, 0.047, 0.138, 0.156, 0.189, 0.203, 0.208),
		RBCopy:        ms(0.003, 0.01, 0.03, 0.048, 0.109, 0.383, 0.671),
		ReverseMap:    ms(6.183, 24.653, 85.117, 255.437, 1211, 4123, 15738),

		IoctlWriteProtectPerPage: microseconds(1.2),

		WritePerPageOp: 720 * time.Nanosecond,
		ReadPerPageOp:  180 * time.Nanosecond,
		VMExit:         800 * time.Nanosecond,
		VMEntry:        600 * time.Nanosecond,
		PMLLogEntry:    15 * time.Nanosecond,
		IRQDelivery:    500 * time.Nanosecond,
		DiskWritePage:  4 * time.Microsecond,
		EPTViolation:   2 * time.Microsecond,
		KernelPageOp:   8 * time.Nanosecond,
		DemandFault:    time.Microsecond,
		ComputePerByte: 10 * time.Nanosecond,
		ComputePerFlop: 1 * time.Nanosecond,
	}
}

// ConstCost returns the cost of a memory-agnostic metric (Table Va third
// column). It returns 0 for memory-dependent metrics; use Curve accessors
// for those.
func (m *Model) ConstCost(metric Metric) time.Duration {
	switch metric {
	case M1ContextSwitch:
		return m.ContextSwitch
	case M3IoctlInitPML:
		return m.IoctlInitPML
	case M4IoctlDeactPML:
		return m.IoctlDeactPML
	case M7VMRead:
		return m.VMRead
	case M8VMWrite:
		return m.VMWrite
	case M9HypInitPML:
		return m.HypInitPML
	case M10HypInitPMLShadow:
		return m.HypInitShadow
	case M11HypDeactPML:
		return m.HypDeactPML
	case M12HypDeactPMLShadow:
		return m.HypDeactShadow
	case M13EnablePMLLogging:
		return m.EnablePMLLog
	}
	return 0
}

// MemCurve returns the curve of a memory-dependent metric, or ok=false for
// constant metrics.
func (m *Model) MemCurve(metric Metric) (Curve, bool) {
	switch metric {
	case M5PFHKernel:
		return m.PFHKernel, true
	case M6PFHUser:
		return m.PFHUser, true
	case M14DisablePMLLogging:
		return m.DisablePMLLog, true
	case M15ClearRefs:
		return m.ClearRefs, true
	case M16PTWalkUser:
		return m.PTWalkUser, true
	case M17ReverseMapping:
		return m.ReverseMap, true
	case M18RingBufferCopy:
		return m.RBCopy, true
	}
	return Curve{}, false
}
