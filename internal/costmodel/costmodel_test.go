package costmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCurveHitsSamplePoints(t *testing.T) {
	m := Default()
	// M5 at the exact sample sizes must return the paper's values.
	cases := []struct {
		mb   uint64
		want time.Duration
	}{
		{1, 3 * time.Microsecond},
		{100, 3340 * time.Microsecond},
		{1024, 33580 * time.Microsecond},
	}
	for _, c := range cases {
		got := m.PFHKernel.Total(c.mb << 20)
		if diff := got - c.want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("PFHKernel(%dMB) = %v, want %v", c.mb, got, c.want)
		}
	}
}

func TestCurveMonotone(t *testing.T) {
	m := Default()
	curves := []Curve{m.ClearRefs, m.PTWalkUser, m.PFHKernel, m.PFHUser, m.RBCopy, m.ReverseMap}
	for ci, c := range curves {
		prev := time.Duration(0)
		for mb := uint64(1); mb <= 2048; mb *= 2 {
			got := c.Total(mb << 20)
			if got < prev {
				t.Errorf("curve %d not monotone at %dMB: %v < %v", ci, mb, got, prev)
			}
			prev = got
		}
	}
}

func TestCurveEdges(t *testing.T) {
	m := Default()
	if m.PFHKernel.Total(0) != 0 {
		t.Error("Total(0) != 0")
	}
	// Below the first sample: linear scale-down.
	half := m.PFHKernel.Total(512 << 10)
	full := m.PFHKernel.Total(1 << 20)
	if half <= 0 || half >= full {
		t.Errorf("sub-sample scaling wrong: %v vs %v", half, full)
	}
	// Above the last sample: extrapolation keeps growing.
	if m.PFHKernel.Total(2<<30) <= m.PFHKernel.Total(1<<30) {
		t.Error("extrapolation not growing")
	}
}

// TestCurveOutOfRange is the regression test for the negative-extrapolation
// bug: with a decreasing final segment, far-above-range sizes used to go
// negative (and panic sim.Clock.Advance). Both out-of-range sides are
// table-driven here.
func TestCurveOutOfRange(t *testing.T) {
	increasing := NewCurve(
		[]float64{10, 100, 1000},
		[]time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond})
	// Final segment slope: (500us-1ms)/(1000MB-100MB) < 0.
	decreasing := NewCurve(
		[]float64{10, 100, 1000},
		[]time.Duration{100 * time.Microsecond, time.Millisecond, 500 * time.Microsecond})

	cases := []struct {
		name      string
		c         Curve
		sizeBytes uint64
		want      time.Duration
	}{
		{"below first sample scales proportionally", increasing, 1 << 20, time.Microsecond},
		{"below first sample half", increasing, 5 << 20, 5 * time.Microsecond},
		{"at last sample", increasing, 1000 << 20, time.Millisecond},
		{"above range follows final slope", increasing, 2000 << 20, 2 * time.Millisecond},
		{"decreasing: just above range still positive", decreasing, 1100 << 20,
			500*time.Microsecond - 55*time.Microsecond - 555*time.Nanosecond},
		{"decreasing: far above range clamps at zero", decreasing, 100 << 30, 0},
	}
	for _, tc := range cases {
		got := tc.c.Total(tc.sizeBytes)
		if diff := got - tc.want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("%s: Total(%d) = %v, want %v", tc.name, tc.sizeBytes, got, tc.want)
		}
	}

	// The invariant that matters to the simulator: no size may ever yield a
	// negative cost (sim.Clock.Advance panics on negative durations).
	for mb := uint64(1); mb <= 1<<20; mb *= 2 {
		for _, c := range []Curve{increasing, decreasing} {
			if got := c.Total(mb << 20); got < 0 {
				t.Fatalf("Total(%dMB) = %v, negative", mb, got)
			}
		}
	}
}

func TestPerPage(t *testing.T) {
	m := Default()
	total := m.PTWalkUser.Total(1 << 30)
	per := m.PTWalkUser.PerPage(1 << 30)
	pages := time.Duration(1 << 30 / 4096)
	if per*pages > total+total/100 || per*pages < total-total/100 {
		t.Errorf("PerPage*pages = %v, total = %v", per*pages, total)
	}
}

func TestMalformedCurvePanics(t *testing.T) {
	for _, tc := range []struct {
		sizes []float64
		costs []time.Duration
	}{
		{[]float64{1}, []time.Duration{1}},
		{[]float64{1, 2}, []time.Duration{1}},
		{[]float64{2, 1}, []time.Duration{1, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCurve(%v) did not panic", tc.sizes)
				}
			}()
			NewCurve(tc.sizes, tc.costs)
		}()
	}
}

func TestMetricClassification(t *testing.T) {
	memDep := []Metric{M2IoctlWriteProtect, M5PFHKernel, M6PFHUser, M14DisablePMLLogging,
		M15ClearRefs, M16PTWalkUser, M17ReverseMapping, M18RingBufferCopy}
	for _, m := range memDep {
		if !m.DependsOnMemory() {
			t.Errorf("%v should depend on memory", m)
		}
	}
	for _, m := range []Metric{M1ContextSwitch, M7VMRead, M9HypInitPML, M13EnablePMLLogging} {
		if m.DependsOnMemory() {
			t.Errorf("%v should not depend on memory", m)
		}
	}
	// Table VI row shapes.
	if n := len(Proc.Metrics()); n != 4 {
		t.Errorf("/proc has %d metrics, want 4", n)
	}
	if n := len(SPML.Metrics()); n != 10 {
		t.Errorf("SPML has %d metrics, want 10", n)
	}
	if n := len(EPML.Metrics()); n != 8 {
		t.Errorf("EPML has %d metrics, want 8", n)
	}
	if n := len(EPML.MemDependentMetrics()); n != 1 {
		t.Errorf("EPML has %d mem-dependent metrics, want 1 (M18)", n)
	}
	if n := len(Proc.MonitoringPhaseMetrics()); n != 1 {
		t.Errorf("/proc has %d monitoring metrics, want 1 (M5)", n)
	}
}

func TestConstCosts(t *testing.T) {
	m := Default()
	if m.ConstCost(M1ContextSwitch) != 315*time.Nanosecond {
		t.Errorf("M1 = %v", m.ConstCost(M1ContextSwitch))
	}
	if m.ConstCost(M9HypInitPML) != 5495*time.Microsecond {
		t.Errorf("M9 = %v", m.ConstCost(M9HypInitPML))
	}
	if m.ConstCost(M5PFHKernel) != 0 {
		t.Error("mem-dependent metric has a const cost")
	}
	if _, ok := m.MemCurve(M17ReverseMapping); !ok {
		t.Error("M17 curve missing")
	}
	if _, ok := m.MemCurve(M1ContextSwitch); ok {
		t.Error("M1 has a curve")
	}
}

func TestEstimateOracleIsZero(t *testing.T) {
	m := Default()
	est := m.Estimate(Oracle, EventCounts{MemBytes: 1 << 30, KernelFaults: 1000})
	if est.ECx != 0 || est.Interaction != 0 {
		t.Errorf("oracle estimate = %v / %v, want 0/0", est.ECx, est.Interaction)
	}
}

func TestEstimateScalesWithCounts(t *testing.T) {
	m := Default()
	base := EventCounts{MemBytes: 64 << 20, KernelFaults: 1000, ClearRefsCalls: 1, PagesWalked: 16384}
	double := base
	double.KernelFaults *= 2
	e1 := m.Estimate(Proc, base)
	e2 := m.Estimate(Proc, double)
	if e2.Interaction <= e1.Interaction {
		t.Error("doubling faults did not raise the interaction estimate")
	}
	if e2.ECx != e1.ECx {
		t.Error("faults leaked into E(C_x) for /proc")
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy(100, 100); a != 100 {
		t.Errorf("exact accuracy = %v", a)
	}
	if a := Accuracy(90, 100); a < 89.9 || a > 90.1 {
		t.Errorf("90%% accuracy = %v", a)
	}
	if a := Accuracy(300, 100); a != 0 {
		t.Errorf("overshoot accuracy = %v, want clamped 0", a)
	}
	if a := Accuracy(0, 0); a != 100 {
		t.Errorf("0/0 accuracy = %v", a)
	}
	if a := Accuracy(5, 0); a != 0 {
		t.Errorf("x/0 accuracy = %v", a)
	}
}

// TestQuickAccuracyBounds: accuracy always lands in [0, 100].
func TestQuickAccuracyBounds(t *testing.T) {
	prop := func(est, meas uint32) bool {
		a := Accuracy(time.Duration(est), time.Duration(meas))
		return a >= 0 && a <= 100
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTechniqueStrings(t *testing.T) {
	names := map[Technique]string{Oracle: "oracle", Proc: "/proc", Ufd: "ufd", SPML: "SPML", EPML: "EPML"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if M17ReverseMapping.String() != "M17 reverse mapping" {
		t.Errorf("metric string = %q", M17ReverseMapping.String())
	}
}
