// Package costmodel encodes the paper's measured micro-metrics (Table V)
// and its analytical overhead formulas (§VI-B, Formulas 1-4).
//
// The paper validates, on real hardware, that the execution time of a
// Tracker and of a Tracked application can be decomposed into per-event
// costs (context switches, page faults, hypercalls, vmread/vmwrite, ring
// buffer copies, page-table walks, reverse mapping) with 96-99 % accuracy,
// and then uses the validated formulas to estimate EPML, which exists only
// in an emulator. Our simulator adopts exactly that decomposition: each
// simulated event advances the virtual clock by a cost drawn from this
// package, so the simulation's totals equal the formulas' predictions by
// construction, and the formula engine (formulas.go) recomputes them
// independently from raw event counts as a cross-check (Table IV).
package costmodel

import "time"

// Metric identifies one of the paper's internal metrics M1..M18 (Table Va).
type Metric int

// The metrics of Table Va, keeping the paper's numbering.
const (
	M1ContextSwitch      Metric = 1  // user<->kernel context switch
	M2IoctlWriteProtect  Metric = 2  // ufd write_protect ioctl (mem-dependent)
	M3IoctlInitPML       Metric = 3  // OoH module ioctl: init PML
	M4IoctlDeactPML      Metric = 4  // OoH module ioctl: deactivate PML
	M5PFHKernel          Metric = 5  // page fault handling in kernel space (mem-dependent)
	M6PFHUser            Metric = 6  // page fault handling in userspace (mem-dependent)
	M7VMRead             Metric = 7  // vmread on shadow VMCS
	M8VMWrite            Metric = 8  // vmwrite on shadow VMCS
	M9HypInitPML         Metric = 9  // hypercall: init PML (SPML)
	M10HypInitPMLShadow  Metric = 10 // hypercall: init PML + VMCS shadowing (EPML)
	M11HypDeactPML       Metric = 11 // hypercall: deactivate PML (SPML)
	M12HypDeactPMLShadow Metric = 12 // hypercall: deactivate PML + shadowing (EPML)
	M13EnablePMLLogging  Metric = 13 // hypercall: enable logging at schedule-in (SPML)
	M14DisablePMLLogging Metric = 14 // hypercall: disable logging at schedule-out (mem-dependent)
	M15ClearRefs         Metric = 15 // echo 4 > /proc/PID/clear_refs (mem-dependent)
	M16PTWalkUser        Metric = 16 // page table walk in userspace via pagemap (mem-dependent)
	M17ReverseMapping    Metric = 17 // GPA->GVA reverse mapping (SPML, mem-dependent)
	M18RingBufferCopy    Metric = 18 // ring buffer copy (mem-dependent)
)

var metricNames = map[Metric]string{
	M1ContextSwitch:      "M1 context switch",
	M2IoctlWriteProtect:  "M2 ioctl write_protect",
	M3IoctlInitPML:       "M3 ioctl init PML",
	M4IoctlDeactPML:      "M4 ioctl deactivate PML",
	M5PFHKernel:          "M5 PFH kernel space",
	M6PFHUser:            "M6 PFH userspace",
	M7VMRead:             "M7 vmread",
	M8VMWrite:            "M8 vmwrite",
	M9HypInitPML:         "M9 hypercall init PML",
	M10HypInitPMLShadow:  "M10 hypercall init PML+shadowing",
	M11HypDeactPML:       "M11 hypercall deact PML",
	M12HypDeactPMLShadow: "M12 hypercall deact PML+shadowing",
	M13EnablePMLLogging:  "M13 enable PML logging",
	M14DisablePMLLogging: "M14 disable PML logging",
	M15ClearRefs:         "M15 clear_refs",
	M16PTWalkUser:        "M16 PT walk userspace",
	M17ReverseMapping:    "M17 reverse mapping",
	M18RingBufferCopy:    "M18 ring buffer copy",
}

// String returns the paper's name for the metric.
func (m Metric) String() string {
	if s, ok := metricNames[m]; ok {
		return s
	}
	return "M? unknown"
}

// DependsOnMemory reports whether the metric's cost varies with the Tracked
// process's memory size (second column of Table Va).
func (m Metric) DependsOnMemory() bool {
	switch m {
	case M2IoctlWriteProtect, M5PFHKernel, M6PFHUser, M14DisablePMLLogging,
		M15ClearRefs, M16PTWalkUser, M17ReverseMapping, M18RingBufferCopy:
		return true
	}
	return false
}

// Technique identifies one of the four dirty page tracking techniques the
// paper compares, plus the hypothetical zero-cost oracle.
type Technique int

// Techniques in the paper's cost order (§I): SPML > ufd > /proc > EPML.
const (
	Oracle Technique = iota
	Proc             // /proc/PID/pagemap soft-dirty bits
	Ufd              // userfaultfd write-protect mode
	SPML             // Shadow PML (hypervisor-emulated, no hw change)
	EPML             // Extended PML (paper's hardware extension)
)

func (t Technique) String() string {
	switch t {
	case Oracle:
		return "oracle"
	case Proc:
		return "/proc"
	case Ufd:
		return "ufd"
	case SPML:
		return "SPML"
	case EPML:
		return "EPML"
	}
	return "unknown"
}

// Metrics returns the metrics associated with a technique (Table VI row 1).
func (t Technique) Metrics() []Metric {
	switch t {
	case Proc:
		return []Metric{M1ContextSwitch, M5PFHKernel, M15ClearRefs, M16PTWalkUser}
	case Ufd:
		return []Metric{M1ContextSwitch, M2IoctlWriteProtect, M5PFHKernel, M6PFHUser}
	case SPML:
		return []Metric{M1ContextSwitch, M3IoctlInitPML, M4IoctlDeactPML, M9HypInitPML,
			M11HypDeactPML, M13EnablePMLLogging, M14DisablePMLLogging,
			M16PTWalkUser, M17ReverseMapping, M18RingBufferCopy}
	case EPML:
		return []Metric{M1ContextSwitch, M3IoctlInitPML, M4IoctlDeactPML, M7VMRead,
			M8VMWrite, M10HypInitPMLShadow, M12HypDeactPMLShadow, M18RingBufferCopy}
	}
	return nil
}

// MemDependentMetrics returns the technique's metrics whose cost scales with
// Tracked memory (Table VI row 2).
func (t Technique) MemDependentMetrics() []Metric {
	var out []Metric
	for _, m := range t.Metrics() {
		if m.DependsOnMemory() {
			out = append(out, m)
		}
	}
	return out
}

// MonitoringPhaseMetrics returns the metrics a technique exercises during
// the monitoring phase, i.e. while Tracked runs (Table VI row 3).
func (t Technique) MonitoringPhaseMetrics() []Metric {
	switch t {
	case Proc:
		return []Metric{M5PFHKernel}
	case Ufd:
		return []Metric{M5PFHKernel, M6PFHUser}
	case SPML:
		return []Metric{M13EnablePMLLogging, M14DisablePMLLogging}
	case EPML:
		return []Metric{M7VMRead, M8VMWrite}
	}
	return nil
}

// microseconds converts a µs count to a duration.
func microseconds(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}

// milliseconds converts a ms count to a duration.
func milliseconds(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
