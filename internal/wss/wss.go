// Package wss implements working-set-size estimation over PML-R: the PML
// extension (Bitchebe et al., cited in §VII) that also logs pages whose
// EPT *accessed* flag transitions during reads, so the hypervisor can see
// every page a VM touches - not only the ones it writes - without page
// faults or EPT scans on the critical path.
//
// The estimator samples in intervals: arm logging with cleared A/D flags,
// let the guest run, drain the log; the number of distinct logged frames
// is the interval's working set.
package wss

import (
	"errors"

	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// Sample is one interval's estimate.
type Sample struct {
	Interval int
	// Pages is the number of distinct guest frames touched.
	Pages int
	// Bytes is Pages expressed in bytes.
	Bytes uint64
}

// Estimator samples a VM's working set size.
type Estimator struct {
	VM      *hypervisor.VM
	samples []Sample
	armed   bool
}

// ErrNotArmed reports EndInterval without a matching BeginInterval.
var ErrNotArmed = errors.New("wss: interval not armed")

// New returns an estimator for vm.
func New(vm *hypervisor.VM) *Estimator { return &Estimator{VM: vm} }

// BeginInterval arms PML-R logging with a clean slate: dirty and accessed
// flags cleared so the first touch of every page this interval is logged.
func (e *Estimator) BeginInterval() {
	e.VM.StartDirtyLogging()
	e.VM.EPT.ClearAccessed()
	e.VM.VCPU.PMLLogReads = true
	e.armed = true
}

// EndInterval drains the log and records the interval's estimate.
func (e *Estimator) EndInterval() (Sample, error) {
	if !e.armed {
		return Sample{}, ErrNotArmed
	}
	touched, err := e.VM.CollectDirty()
	if err != nil {
		return Sample{}, err
	}
	e.VM.VCPU.PMLLogReads = false
	e.VM.StopDirtyLogging()
	e.armed = false
	s := Sample{
		Interval: len(e.samples) + 1,
		Pages:    len(touched),
		Bytes:    uint64(len(touched)) * mem.PageSize,
	}
	e.samples = append(e.samples, s)
	return s, nil
}

// Samples returns all recorded intervals.
func (e *Estimator) Samples() []Sample { return e.samples }

// Peak returns the largest sampled working set in pages.
func (e *Estimator) Peak() int {
	peak := 0
	for _, s := range e.samples {
		if s.Pages > peak {
			peak = s.Pages
		}
	}
	return peak
}
