// Package wss implements working-set-size estimation over PML-R: the PML
// extension (Bitchebe et al., cited in §VII) that also logs pages whose
// EPT *accessed* flag transitions during reads, so the hypervisor can see
// every page a VM touches - not only the ones it writes - without page
// faults or EPT scans on the critical path.
//
// The estimator samples in intervals: arm logging with cleared A/D flags,
// let the guest run, drain the log; the number of distinct logged frames
// is the interval's working set. Arming goes through the hv.AccessLog
// capability, so the estimator runs on any backend that reports one (the
// "sim" backend arms real PML-R; the "oracle" backend observes EPT walks
// for free and bounds PML-R's cost from below).
package wss

import (
	"errors"

	"repro/internal/hv"
	"repro/internal/mem"
)

// Sample is one interval's estimate.
type Sample struct {
	Interval int
	// Pages is the number of distinct guest frames touched.
	Pages int
	// Bytes is Pages expressed in bytes.
	Bytes uint64
}

// Estimator samples a VM's working set size.
type Estimator struct {
	VM      hv.VirtualMachine
	log     hv.AccessLog // nil when the backend lacks the capability
	samples []Sample
	armed   bool
}

// Errors reported by the estimator.
var (
	// ErrNotArmed reports EndInterval without a matching BeginInterval.
	ErrNotArmed = errors.New("wss: interval not armed")
	// ErrNoAccessLog reports a VM whose backend does not expose the
	// hv.AccessLog capability PML-R estimation depends on.
	ErrNoAccessLog = errors.New("wss: backend VM exposes no access log")
)

// New returns an estimator for vm. The hv.AccessLog capability is probed
// here; on a backend without one, BeginInterval is a no-op and
// EndInterval reports ErrNoAccessLog.
func New(vm hv.VirtualMachine) *Estimator {
	e := &Estimator{VM: vm}
	e.log, _ = vm.(hv.AccessLog)
	return e
}

// BeginInterval arms PML-R logging with a clean slate: dirty and accessed
// flags cleared so the first touch of every page this interval is logged.
func (e *Estimator) BeginInterval() {
	if e.log == nil {
		return
	}
	e.log.StartAccessLogging()
	e.armed = true
}

// disarm tears down the interval's arming unconditionally: read logging
// off, hypervisor dirty logging off, estimator disarmed. Centralized so
// every EndInterval path - success or error - leaves the VM clean, the way
// criu's abort() does for checkpoint sessions.
func (e *Estimator) disarm() {
	e.log.StopAccessLogging()
	e.armed = false
}

// EndInterval drains the log and records the interval's estimate. The
// interval is disarmed on every path: a failed collect must not leak
// PML-R arming or hypervisor dirty logging into the caller's next steps.
func (e *Estimator) EndInterval() (Sample, error) {
	if e.log == nil {
		return Sample{}, ErrNoAccessLog
	}
	if !e.armed {
		return Sample{}, ErrNotArmed
	}
	touched, err := e.log.CollectAccessed()
	e.disarm()
	if err != nil {
		return Sample{}, err
	}
	s := Sample{
		Interval: len(e.samples) + 1,
		Pages:    len(touched),
		Bytes:    uint64(len(touched)) * mem.PageSize,
	}
	e.samples = append(e.samples, s)
	return s, nil
}

// Samples returns all recorded intervals.
func (e *Estimator) Samples() []Sample { return e.samples }

// Peak returns the largest sampled working set in pages.
func (e *Estimator) Peak() int {
	peak := 0
	for _, s := range e.samples {
		if s.Pages > peak {
			peak = s.Pages
		}
	}
	return peak
}
