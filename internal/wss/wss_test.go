package wss

import (
	"errors"
	"repro/internal/faults"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

func boot(t *testing.T, pages int) (*machine.Guest, mem.GVA) {
	t.Helper()
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	// Populate so frames exist and A/D flags have history.
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g, region.Start
}

// TestWSSCountsReadsAndWrites: the estimate covers read-only pages, which
// pure dirty logging would miss - the whole point of PML-R.
func TestWSSCountsReadsAndWrites(t *testing.T) {
	g, base := boot(t, 128)
	proc, _ := g.Kernel.Process(1)
	est := New(g.VM)

	est.BeginInterval()
	// Touch 40 pages: 10 by writing, 30 by reading only.
	for p := 0; p < 10; p++ {
		if err := proc.WriteU64(base.Add(uint64(p)*mem.PageSize), 2); err != nil {
			t.Fatal(err)
		}
	}
	for p := 10; p < 40; p++ {
		if _, err := proc.ReadU64(base.Add(uint64(p) * mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := est.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if s.Pages != 40 {
		t.Errorf("WSS = %d pages, want 40 (reads must count)", s.Pages)
	}
	if s.Bytes != 40*mem.PageSize {
		t.Errorf("Bytes = %d", s.Bytes)
	}
}

// TestWSSIntervalsIndependent: each interval re-arms from a clean slate.
func TestWSSIntervalsIndependent(t *testing.T) {
	g, base := boot(t, 64)
	proc, _ := g.Kernel.Process(1)
	est := New(g.VM)

	touch := func(n int) {
		for p := 0; p < n; p++ {
			if _, err := proc.ReadU64(base.Add(uint64(p) * mem.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, want := range []int{50, 8, 20} {
		est.BeginInterval()
		touch(want)
		s, err := est.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if s.Pages != want {
			t.Errorf("interval %d: WSS = %d, want %d", i+1, s.Pages, want)
		}
	}
	if est.Peak() != 50 {
		t.Errorf("Peak = %d, want 50", est.Peak())
	}
	if len(est.Samples()) != 3 {
		t.Errorf("Samples = %d", len(est.Samples()))
	}
}

// TestWSSRepeatedTouchesCountOnce: touching one page many times is one
// working-set page.
func TestWSSRepeatedTouchesCountOnce(t *testing.T) {
	g, base := boot(t, 8)
	proc, _ := g.Kernel.Process(1)
	est := New(g.VM)
	est.BeginInterval()
	for i := 0; i < 100; i++ {
		if _, err := proc.ReadU64(base); err != nil {
			t.Fatal(err)
		}
		if err := proc.WriteU64(base.Add(8), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := est.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if s.Pages != 1 {
		t.Errorf("WSS = %d, want 1", s.Pages)
	}
}

func TestWSSEndWithoutBegin(t *testing.T) {
	g, _ := boot(t, 4)
	est := New(g.VM)
	if _, err := est.EndInterval(); !errors.Is(err, ErrNotArmed) {
		t.Errorf("EndInterval unarmed: %v", err)
	}
}

// TestWSSDoesNotDisturbEPML: sampling the VM's WSS while a guest EPML
// session tracks a process leaves the guest's dirty view intact.
func TestWSSDoesNotDisturbEPML(t *testing.T) {
	g, base := boot(t, 32)
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(machine.RealTechniques()[3], proc) // EPML
	if err != nil {
		t.Fatal(err)
	}
	if err := tech.Init(); err != nil {
		t.Fatal(err)
	}
	est := New(g.VM)
	est.BeginInterval()
	for p := 0; p < 16; p++ {
		if err := proc.WriteU64(base.Add(uint64(p)*mem.PageSize), 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := est.EndInterval(); err != nil {
		t.Fatal(err)
	}
	dirty, err := tech.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 16 {
		t.Errorf("EPML saw %d dirty pages during WSS sampling, want 16", len(dirty))
	}
}

// TestWSSEndIntervalErrorDisarms: a failed collect must not leak PML-R
// arming, hypervisor dirty logging, or the estimator's armed flag.
func TestWSSEndIntervalErrorDisarms(t *testing.T) {
	g, base := boot(t, 16)
	proc, _ := g.Kernel.Process(1)
	est := New(g.VM)

	est.BeginInterval()
	for p := 0; p < 8; p++ {
		if _, err := proc.ReadU64(base.Add(uint64(p) * mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	var spec faults.Spec
	spec.SetRate(faults.CollectFail, 1)
	g.SimVM().VCPU.Inj = faults.New(spec, 1)
	if _, err := est.EndInterval(); !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("EndInterval under injected collect failure: %v", err)
	}
	g.SimVM().VCPU.Inj = nil

	if g.SimVM().VCPU.PMLLogReads {
		t.Error("PMLLogReads still armed after failed EndInterval")
	}
	if g.SimVM().EnabledByHyp() {
		t.Error("hypervisor dirty logging still enabled after failed EndInterval")
	}
	if _, err := est.EndInterval(); !errors.Is(err, ErrNotArmed) {
		t.Errorf("estimator still armed after failed EndInterval: %v", err)
	}
	// A fresh interval still works and sees only its own touches.
	est.BeginInterval()
	if _, err := proc.ReadU64(base); err != nil {
		t.Fatal(err)
	}
	s, err := est.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if s.Pages != 1 {
		t.Errorf("post-recovery interval WSS = %d, want 1", s.Pages)
	}
	if len(est.Samples()) != 1 {
		t.Errorf("failed interval recorded a sample: %d", len(est.Samples()))
	}
}
