package core

import (
	"fmt"
	"time"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/trace"
)

// Lib is the userspace half of the OoH UIO driver: the template code a
// Tracker embeds (§IV-B). One Lib serves one guest; sessions are opened per
// tracked PID.
type Lib struct {
	mod *Module
}

// NewLib returns the userspace library bound to a loaded module.
func NewLib(mod *Module) *Lib { return &Lib{mod: mod} }

// Module returns the underlying kernel module.
func (l *Lib) Module() *Module { return l.mod }

// Session is a Tracker's handle on one tracked process.
type Session struct {
	lib  *Lib
	pid  guestos.Pid
	s    *session
	open bool

	// ReuseReverseIndex caches the GPA->GVA reverse index across Fetch
	// calls (SPML only). The paper's Boehm integration does exactly this:
	// "During the following cycles, Boehm just reuses the addresses
	// collected during the first cycle" (footnote 2), which is why only
	// the first GC cycle pays the reverse-mapping price in Fig. 5. The
	// cache is sound only while the tracked process's mappings are stable
	// (a GC heap); CRIU leaves it off.
	ReuseReverseIndex bool
	revIndex          map[mem.GPA]mem.GVA

	// FetchBreakdown of the last Fetch call, for Fig. 3.
	LastBreakdown FetchBreakdown
}

// FetchBreakdown decomposes one collection into the paper's Fig. 3 steps.
type FetchBreakdown struct {
	RingCopy   time.Duration // draining ring entries (M18)
	PTWalk     time.Duration // pagemap walk building the reverse index (M16)
	ReverseMap time.Duration // GPA->GVA lookups (M17)
	Entries    int           // addresses returned
}

// Total returns the collection's total time.
func (b FetchBreakdown) Total() time.Duration { return b.RingCopy + b.PTWalk + b.ReverseMap }

// Open starts tracking pid and returns the session handle.
func (l *Lib) Open(pid guestos.Pid) (*Session, error) {
	if err := l.mod.Register(pid); err != nil {
		return nil, err
	}
	s, _ := l.mod.Session(pid)
	return &Session{lib: l, pid: pid, s: s, open: true}, nil
}

// Close stops tracking.
func (s *Session) Close() error {
	if !s.open {
		return nil
	}
	s.open = false
	return s.lib.mod.Unregister(s.pid)
}

// Fetch returns the dirty page GVAs accumulated since the previous Fetch
// (or since Open), de-duplicated, and re-arms logging for those pages.
//
// SPML (§IV-C): a drain hypercall moves the partial PML buffer into the
// ring and re-arms the EPT dirty flags; the ring then yields GPAs that the
// library reverse-maps to GVAs by parsing the page table through /proc -
// the dominant cost the paper attributes to SPML (M17, Fig. 3).
//
// EPML (§IV-D): the ring already contains GVAs; the library only drains it
// and clears the guest PTE dirty bits to re-arm the walk-circuit logging.
func (s *Session) Fetch() ([]mem.GVA, error) {
	if !s.open {
		return nil, fmt.Errorf("%w: %d", ErrNotTracked, s.pid)
	}
	mod := s.lib.mod
	k := mod.K
	clock := k.Clock
	s.LastBreakdown = FetchBreakdown{}
	fetchSp := k.VCPU.Prof.Begin(prof.SubCore, "fetch")
	defer fetchSp.End()

	switch mod.Mode {
	case ModeSPML:
		// Flush the hardware buffer into this process's ring and re-arm
		// EPT dirty flags for everything we are about to consume.
		if _, err := k.VCPU.Hypercall(hypervisor.HCDrainRing, uint64(s.pid)); err != nil {
			return nil, err
		}
		tr, ev := k.VCPU.Tracer, k.VCPU.Met
		sp := k.VCPU.Prof.Begin(prof.SubCore, "ring_copy")
		w := startSpan(clock)
		raw := s.s.ring.Drain(nil)
		perEntry := k.Model.RBCopy.PerPage(s.s.proc.ReservedBytes())
		clock.Advance(perEntry * time.Duration(len(raw)))
		s.LastBreakdown.RingCopy = w.stop()
		sp.End()
		if tr.Enabled(trace.KindRingCopy) {
			tr.Emit(trace.Record{Kind: trace.KindRingCopy, VM: int32(k.VCPU.ID), TS: w.start,
				Cost: int64(s.LastBreakdown.RingCopy), Arg: int64(len(raw))})
		}
		ev.Observe(trace.KindRingCopy, clock.Nanos(), int64(s.LastBreakdown.RingCopy), int64(len(raw)))

		if len(raw) == 0 {
			return nil, nil
		}

		// Reverse mapping: one pagemap pass over the address space (charged
		// as the userspace PT walk, M16), then each logged GPA is resolved
		// (charged as M17). With ReuseReverseIndex a materialized index
		// survives across fetches and only the first call pays. Without it,
		// the walk's cost and observability are charged via PagemapWalkCharge
		// and each GPA resolves through the page table's own reverse index -
		// the simulated work is identical, the host work drops from
		// O(pages) to O(logged entries).
		var lookup func(gpa mem.GPA) (mem.GVA, bool)
		cached := s.ReuseReverseIndex && s.revIndex != nil
		switch {
		case cached:
			index := s.revIndex
			lookup = func(gpa mem.GPA) (mem.GVA, bool) {
				gva, ok := index[gpa.PageFloor()]
				return gva, ok
			}
		case s.ReuseReverseIndex:
			sp := k.VCPU.Prof.Begin(prof.SubCore, "pt_walk")
			w = startSpan(clock)
			entries, err := k.Pagemap(s.pid)
			if err != nil {
				sp.End()
				return nil, err
			}
			index := make(map[mem.GPA]mem.GVA, len(entries))
			for _, e := range entries {
				if e.Present {
					index[e.GPA.PageFloor()] = e.GVA
				}
			}
			s.LastBreakdown.PTWalk = w.stop()
			if tr.Enabled(trace.KindPTWalk) {
				tr.Emit(trace.Record{Kind: trace.KindPTWalk, VM: int32(k.VCPU.ID), TS: w.start,
					Cost: int64(s.LastBreakdown.PTWalk), Arg: int64(len(entries))})
			}
			ev.Observe(trace.KindPTWalk, clock.Nanos(), int64(s.LastBreakdown.PTWalk), int64(len(entries)))
			s.revIndex = index
			sp.End()
			lookup = func(gpa mem.GPA) (mem.GVA, bool) {
				gva, ok := index[gpa.PageFloor()]
				return gva, ok
			}
		default:
			sp := k.VCPU.Prof.Begin(prof.SubCore, "pt_walk")
			w = startSpan(clock)
			pages, err := k.PagemapWalkCharge(s.pid)
			if err != nil {
				sp.End()
				return nil, err
			}
			s.LastBreakdown.PTWalk = w.stop()
			if tr.Enabled(trace.KindPTWalk) {
				tr.Emit(trace.Record{Kind: trace.KindPTWalk, VM: int32(k.VCPU.ID), TS: w.start,
					Cost: int64(s.LastBreakdown.PTWalk), Arg: int64(pages)})
			}
			ev.Observe(trace.KindPTWalk, clock.Nanos(), int64(s.LastBreakdown.PTWalk), int64(pages))
			sp.End()
			pt := s.s.proc.PT
			lookup = func(gpa mem.GPA) (mem.GVA, bool) {
				gva, ok := pt.ReverseLookup(gpa.PageFloor())
				return gva, ok
			}
		}

		rmSp := k.VCPU.Prof.Begin(prof.SubCore, "reverse_map")
		w = startSpan(clock)
		perLookup := k.Model.ReverseMap.PerPage(s.s.proc.ReservedBytes())
		if cached {
			perLookup = k.Model.KernelPageOp
		}
		seen := make(map[mem.GVA]struct{}, len(raw))
		var out []mem.GVA
		for _, r := range raw {
			clock.Advance(perLookup)
			gva, ok := lookup(mem.GPA(r))
			if !ok {
				continue // page unmapped since it was logged
			}
			if _, dup := seen[gva]; dup {
				continue
			}
			seen[gva] = struct{}{}
			out = append(out, gva)
		}
		s.LastBreakdown.ReverseMap = w.stop()
		rmSp.End()
		s.LastBreakdown.Entries = len(out)
		if tr.Enabled(trace.KindReverseMap) {
			tr.Emit(trace.Record{Kind: trace.KindReverseMap, VM: int32(k.VCPU.ID), TS: w.start,
				Cost: int64(s.LastBreakdown.ReverseMap), Arg: int64(len(out))})
		}
		ev.Observe(trace.KindReverseMap, clock.Nanos(), int64(s.LastBreakdown.ReverseMap), int64(len(out)))
		return out, nil

	case ModeEPML:
		// Pull in anything still sitting in the guest-level buffer.
		s.s.drainGuestBuffer()
		sp := k.VCPU.Prof.Begin(prof.SubCore, "ring_copy")
		w := startSpan(clock)
		raw := s.s.ring.Drain(nil)
		perEntry := k.Model.RBCopy.PerPage(s.s.proc.ReservedBytes())
		clock.Advance(perEntry * time.Duration(len(raw)))
		seen := make(map[mem.GVA]struct{}, len(raw))
		var out []mem.GVA
		for _, r := range raw {
			gva := mem.GVA(r)
			if _, dup := seen[gva]; dup {
				continue
			}
			// Harden against stale ring generations: a legitimately logged
			// page always has its guest PTE dirty bit set (the walk circuit
			// sets it in the same micro-op that logs), so an entry whose PTE
			// is absent or clean is left over from a buffer the guest failed
			// to reset (e.g. a faulted index vmwrite) and must not be
			// reported. On fault-free runs this filter never rejects.
			if pte, ok := s.s.proc.PT.Lookup(gva); !ok || !pte.Dirty() {
				continue
			}
			seen[gva] = struct{}{}
			out = append(out, gva)
			// Re-arm: clear the guest PTE dirty bit so the next write
			// to this page is logged again.
			_ = s.s.proc.PT.ClearFlags(gva, pgtable.FlagDirty)
			clock.Advance(k.Model.KernelPageOp)
		}
		s.LastBreakdown.RingCopy = w.stop()
		sp.End()
		s.LastBreakdown.Entries = len(out)
		if tr := k.VCPU.Tracer; tr.Enabled(trace.KindRingCopy) {
			tr.Emit(trace.Record{Kind: trace.KindRingCopy, VM: int32(k.VCPU.ID), TS: w.start,
				Cost: int64(s.LastBreakdown.RingCopy), Arg: int64(len(raw))})
		}
		k.VCPU.Met.Observe(trace.KindRingCopy, clock.Nanos(), int64(s.LastBreakdown.RingCopy), int64(len(raw)))
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown mode %v", mod.Mode)
}

// span measures virtual time.
type span struct {
	clock interface{ Nanos() int64 }
	start int64
}

func startSpan(c interface{ Nanos() int64 }) span { return span{clock: c, start: c.Nanos()} }

func (s span) stop() time.Duration { return time.Duration(s.clock.Nanos() - s.start) }
