package core

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

// stack boots hypervisor + kernel and loads an OoH module in the given mode.
func stack(t *testing.T, mode Mode) (*guestos.Kernel, *hypervisor.VM, *Lib) {
	t.Helper()
	h := hypervisor.New(mem.NewPhysMem(0), costmodel.Default())
	vm, err := h.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	k := guestos.NewKernel(vm.VCPU, costmodel.Default())
	return k, vm, NewLib(NewModule(k, vm, mode))
}

func TestModes(t *testing.T) {
	if ModeSPML.String() != "SPML" || ModeEPML.String() != "EPML" {
		t.Error("mode strings wrong")
	}
}

func TestRegisterErrors(t *testing.T) {
	k, _, lib := stack(t, ModeSPML)
	p := k.Spawn("app")
	if _, err := p.Mmap(4*mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	s, err := lib.Open(p.Pid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Open(p.Pid); !errors.Is(err, ErrAlreadyTracked) {
		t.Errorf("double open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
	if _, err := lib.Open(guestos.Pid(999)); err == nil {
		t.Error("open of missing pid succeeded")
	}
	// Fetch on a closed session fails.
	if _, err := s.Fetch(); !errors.Is(err, ErrNotTracked) {
		t.Errorf("fetch on closed session: %v", err)
	}
}

func TestSPMLSessionFetch(t *testing.T) {
	k, _, lib := stack(t, ModeSPML)
	p := k.Spawn("app")
	r, err := p.Mmap(16*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lib.Open(p.Pid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i += 2 {
		if err := p.WriteU64(r.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Errorf("fetched %d pages, want 8", len(got))
	}
	// All fetched addresses are GVAs inside the region (reverse mapping
	// worked) and page aligned.
	for _, gva := range got {
		if !r.Contains(gva) || gva.PageOffset() != 0 {
			t.Errorf("bad fetched address %v", gva)
		}
	}
	// The breakdown recorded the reverse-mapping work.
	if s.LastBreakdown.ReverseMap == 0 || s.LastBreakdown.PTWalk == 0 {
		t.Errorf("fetch breakdown empty: %+v", s.LastBreakdown)
	}
	// Nothing new: empty fetch.
	got, err = s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("idle fetch returned %d pages", len(got))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSPMLReverseIndexCache(t *testing.T) {
	k, _, lib := stack(t, ModeSPML)
	p := k.Spawn("app")
	r, err := p.Mmap(64*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lib.Open(p.Pid)
	if err != nil {
		t.Fatal(err)
	}
	s.ReuseReverseIndex = true
	write := func() {
		for i := 0; i < 64; i++ {
			if err := p.WriteU64(r.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	write()
	if _, err := s.Fetch(); err != nil {
		t.Fatal(err)
	}
	first := s.LastBreakdown
	write()
	got, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("second fetch returned %d pages, want 64", len(got))
	}
	second := s.LastBreakdown
	if second.PTWalk != 0 {
		t.Errorf("cached fetch still walked the page table (%v)", second.PTWalk)
	}
	if second.ReverseMap*10 > first.ReverseMap {
		t.Errorf("cached reverse map %v not >> cheaper than first %v",
			second.ReverseMap, first.ReverseMap)
	}
}

func TestEPMLSessionFetch(t *testing.T) {
	k, _, lib := stack(t, ModeEPML)
	p := k.Spawn("app")
	r, err := p.Mmap(1024*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lib.Open(p.Pid)
	if err != nil {
		t.Fatal(err)
	}
	// Cross the 512-entry buffer: the self-IPI drain must preserve all.
	for i := 0; i < 1024; i++ {
		if err := p.WriteU64(r.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1024 {
		t.Errorf("fetched %d pages, want 1024", len(got))
	}
	// Re-arm works: writing the same pages again re-reports them.
	for i := 0; i < 10; i++ {
		if err := p.WriteU64(r.Start.Add(uint64(i)*mem.PageSize), 2); err != nil {
			t.Fatal(err)
		}
	}
	got, err = s.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("re-fetch returned %d pages, want 10", len(got))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// After the last session closes, shadowing is torn down.
	if lib.Module().VM.VMCS.ShadowingEnabled() {
		t.Error("shadowing still enabled after last Unregister")
	}
}

func TestEPMLMultipleSessions(t *testing.T) {
	k, _, lib := stack(t, ModeEPML)
	p1 := k.Spawn("a")
	p2 := k.Spawn("b")
	r1, err := p1.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := lib.Open(p1.Pid)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lib.Open(p2.Pid)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave writes from both processes (scheduler notifiers swap the
	// active buffer on each process's operations).
	for i := 0; i < 8; i++ {
		if err := p1.WriteU64(r1.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := p2.WriteU64(r2.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	d1, err := s1.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s2.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, gva := range d1 {
		if !r1.Contains(gva) {
			t.Errorf("p1 session leaked address %v", gva)
		}
	}
	for _, gva := range d2 {
		if !r2.Contains(gva) {
			t.Errorf("p2 session leaked address %v", gva)
		}
	}
	if len(d2) != 4 {
		t.Errorf("p2 dirty = %d, want 4", len(d2))
	}
}

// TestSPMLMultipleSessions is the §V property for SPML: with the updated
// per-process ring design, concurrent tracked processes each see only the
// addresses of their own address space - no side channel between tenants.
func TestSPMLMultipleSessions(t *testing.T) {
	k, _, lib := stack(t, ModeSPML)
	p1 := k.Spawn("a")
	p2 := k.Spawn("b")
	r1, err := p1.Mmap(16*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Mmap(16*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := lib.Open(p1.Pid)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lib.Open(p2.Pid)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave writes: the scheduler's switch notifiers move the PML
	// window (and the hypervisor's active ring) between the processes.
	for i := 0; i < 16; i++ {
		if err := p1.WriteU64(r1.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := p2.WriteU64(r2.Start.Add(uint64(i)*mem.PageSize), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	d1, err := s1.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s2.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 16 {
		t.Errorf("p1 dirty = %d, want 16", len(d1))
	}
	if len(d2) != 8 {
		t.Errorf("p2 dirty = %d, want 8", len(d2))
	}
	for _, gva := range d1 {
		if !r1.Contains(gva) {
			t.Errorf("p1 session leaked address %v", gva)
		}
	}
	for _, gva := range d2 {
		if !r2.Contains(gva) {
			t.Errorf("p2 session leaked address %v", gva)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUnregisterUnknown(t *testing.T) {
	k, _, lib := stack(t, ModeSPML)
	_ = k
	if err := lib.Module().Unregister(guestos.Pid(5)); !errors.Is(err, ErrNotTracked) {
		t.Errorf("unregister unknown: %v", err)
	}
}
