// Package core implements the paper's primary contribution: the OoH
// (Out of Hypervisor) facility that exposes Intel PML to guest userspace.
//
// Following §IV-B, OoH ships as a UIO-style driver in two parts:
//
//   - Module: the guest kernel module. It allocates the ring buffer shared
//     with userspace (and, for SPML, filled by the hypervisor), registers
//     tracked PIDs, hooks the scheduler's context-switch notifier chain to
//     enable/disable logging around a tracked process's time slices, and -
//     for EPML - owns the guest-level PML buffer, arms it through exit-free
//     vmwrites to the shadow VMCS, and handles the buffer-full self-IPI.
//
//   - Lib: the userspace template code a Tracker (CRIU, Boehm GC, ...)
//     links in. It opens sessions against the module and fetches dirty
//     page addresses; for SPML it performs the GPA->GVA reverse mapping
//     that EPML's hardware extension renders unnecessary.
package core

import (
	"errors"
	"fmt"

	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/ringbuf"
	"repro/internal/trace"
	"repro/internal/vmcs"
)

// Mode selects the OoH variant.
type Mode int

// OoH variants (§IV-C, §IV-D).
const (
	// ModeSPML emulates per-process PML in the hypervisor: hypercalls on
	// every schedule-in/out, GPAs in the ring, reverse mapping in the lib.
	ModeSPML Mode = iota
	// ModeEPML uses the paper's hardware extension: the CPU logs GVAs to
	// a guest-owned buffer, armed by vmwrites on the shadow VMCS, drained
	// on a posted self-IPI; the hypervisor is off the critical path.
	ModeEPML
)

func (m Mode) String() string {
	if m == ModeSPML {
		return "SPML"
	}
	return "EPML"
}

// EPMLVector is the interrupt vector of the guest-buffer-full self-IPI; the
// paper's Linux patch adds exactly this entry to the interrupt table.
const EPMLVector = 0xEC

// DefaultRingEntries sizes the per-process ring buffer. It must comfortably
// exceed the largest dirty set between two fetches; the completeness tests
// drive this. 1<<20 entries cover 4 GiB of distinct dirty pages.
const DefaultRingEntries = 1 << 20

// Errors returned by the module.
var (
	ErrAlreadyTracked = errors.New("core: pid already has an OoH session")
	ErrNotTracked     = errors.New("core: pid has no OoH session")
)

// Module is the OoH guest kernel module.
type Module struct {
	K    *guestos.Kernel
	VM   *hypervisor.VM
	Mode Mode

	// RingEntries sizes each session's ring buffer; zero selects
	// DefaultRingEntries. Ablation benches vary it.
	RingEntries int

	sessions map[guestos.Pid]*session
	// shadowReady notes that the one EPML setup hypercall has been made
	// (§IV-D: "This is the only hypercall performed in EPML").
	shadowReady bool
}

// session is the per-tracked-process state.
type session struct {
	mod  *Module
	proc *guestos.Process
	ring *ringbuf.Ring

	// EPML: the guest-level PML buffer page (guest physical) and the GVAs
	// whose guest-PTE dirty bits must be cleared at fetch to re-arm
	// logging.
	guestBufGPA mem.GPA

	active bool
}

// NewModule loads the OoH module into a guest kernel. Loading performs no
// hypercalls; those happen per Register, matching the measured M9/M10
// initialization costs.
func NewModule(k *guestos.Kernel, vm *hypervisor.VM, mode Mode) *Module {
	m := &Module{K: k, VM: vm, Mode: mode, sessions: make(map[guestos.Pid]*session)}
	if mode == ModeEPML {
		// Program the self-IPI vector into the (emulated) CPU and install
		// the handler in the guest's interrupt table (§IV-E Linux change).
		k.VCPU.EPMLVector = EPMLVector
		k.RegisterIRQ(EPMLVector, m.handleBufferFullIRQ)
	}
	return m
}

// Register starts tracking pid: the Tracker's ioctl into the module. It
// allocates the ring, arms the hardware (via hypercall for SPML; via the
// one-shot shadowing setup plus vmwrites for EPML) and hooks the scheduler.
func (m *Module) Register(pid guestos.Pid) error {
	if _, dup := m.sessions[pid]; dup {
		return fmt.Errorf("%w: %d", ErrAlreadyTracked, pid)
	}
	proc, ok := m.K.Process(pid)
	if !ok {
		return fmt.Errorf("%w: %d", guestos.ErrNoSuchProcess, pid)
	}
	entries := m.RingEntries
	if entries <= 0 {
		entries = DefaultRingEntries
	}
	s := &session{mod: m, proc: proc, ring: ringbuf.New(entries)}
	m.K.Clock.Advance(m.K.Model.IoctlInitPML) // M3

	switch m.Mode {
	case ModeSPML:
		// The ring is allocated in guest memory and shared with the
		// hypervisor, one per tracked process (§V); register it under the
		// PID tag, then arm PML for this guest.
		m.VM.RegisterGuestRing(uint64(pid), s.ring, proc.ReservedBytes())
		if _, err := m.K.VCPU.Hypercall(hypervisor.HCInitPML, proc.ReservedBytes()); err != nil {
			return err
		}
	case ModeEPML:
		if !m.shadowReady {
			if _, err := m.K.VCPU.Hypercall(hypervisor.HCInitShadow); err != nil {
				return err
			}
			m.shadowReady = true
		}
		// Allocate the guest-level PML buffer; arm it with exit-free
		// vmwrites (the extended vmwrite micro-op translates the GPA)
		// only when the tracked process is the one on the CPU - otherwise
		// the schedule-in notifier arms it when it runs.
		s.guestBufGPA = m.K.AllocGuestFrame()
		if err := m.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLIndex, vmcs.PMLResetIndex); err != nil {
			return err
		}
		if cur := m.K.Current(); cur == nil || cur == proc {
			if err := m.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLAddress, uint64(s.guestBufGPA)); err != nil {
				return err
			}
			if err := m.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1); err != nil {
				return err
			}
		}
		// Start from a clean slate: clear the process's guest-PTE dirty
		// bits so every first write is logged (cost inside M3's ioctl).
		m.clearGuestDirty(proc)
	}

	m.K.Sched.Notify(pid, s)
	m.sessions[pid] = s
	s.active = true
	return nil
}

// Unregister stops tracking pid and disarms the hardware.
func (m *Module) Unregister(pid guestos.Pid) error {
	s, ok := m.sessions[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotTracked, pid)
	}
	m.K.Clock.Advance(m.K.Model.IoctlDeactPML) // M4
	m.K.Sched.Unnotify(pid, s)
	s.active = false
	delete(m.sessions, pid)
	switch m.Mode {
	case ModeSPML:
		m.VM.UnregisterGuestRing(uint64(pid))
		if _, err := m.K.VCPU.Hypercall(hypervisor.HCDeactPML); err != nil {
			return err
		}
	case ModeEPML:
		if err := m.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLEnable, 0); err != nil {
			return err
		}
		if len(m.sessions) == 0 && m.shadowReady {
			if _, err := m.K.VCPU.Hypercall(hypervisor.HCDeactShadow); err != nil {
				return err
			}
			m.shadowReady = false
		}
	}
	return nil
}

// Session returns the live session for pid.
func (m *Module) Session(pid guestos.Pid) (*session, bool) {
	s, ok := m.sessions[pid]
	return s, ok
}

// SessionDropped reports how many logged addresses were lost because
// pid's ring buffer was full - zero whenever the ring is sized with
// headroom over the inter-fetch dirty set (the completeness requirement).
func (m *Module) SessionDropped(pid guestos.Pid) uint64 {
	if s, ok := m.sessions[pid]; ok {
		return s.ring.Dropped()
	}
	return 0
}

// clearGuestDirty clears the architectural dirty bit of every present PTE
// of proc, re-arming EPML's walk-circuit logging.
func (m *Module) clearGuestDirty(proc *guestos.Process) {
	proc.PT.Range(func(gva mem.GVA, pte pgtable.PTE) bool {
		_ = proc.PT.ClearFlags(gva, pgtable.FlagDirty)
		return true
	})
}

// --- scheduler notifier (per-process logging windows, challenge C2) -----------

// ScheduledIn arms logging when the tracked process gets the CPU.
func (s *session) ScheduledIn(p *guestos.Process) {
	if !s.active {
		return
	}
	switch s.mod.Mode {
	case ModeSPML:
		_, _ = s.mod.K.VCPU.Hypercall(hypervisor.HCEnableLogging, uint64(s.proc.Pid))
	case ModeEPML:
		_ = s.mod.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLAddress, uint64(s.guestBufGPA))
		_ = s.mod.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLEnable, 1)
	}
}

// ScheduledOut disarms logging when the tracked process is preempted. For
// SPML the hypercall also flushes the partial PML buffer into the ring; for
// EPML the module drains its own buffer with plain kernel reads.
func (s *session) ScheduledOut(p *guestos.Process) {
	if !s.active {
		return
	}
	switch s.mod.Mode {
	case ModeSPML:
		_, _ = s.mod.K.VCPU.Hypercall(hypervisor.HCDisableLogging)
	case ModeEPML:
		_ = s.mod.K.VCPU.GuestVMWrite(vmcs.FieldGuestPMLEnable, 0)
		s.drainGuestBuffer()
	}
}

// --- EPML guest buffer handling ------------------------------------------------

// handleBufferFullIRQ services the posted self-IPI raised by the CPU when
// the guest-level PML buffer fills (§IV-D, last hardware extension). Only
// one buffer is armed at a time - the scheduled tracked process's - so the
// handler drains exactly that session.
func (m *Module) handleBufferFullIRQ() {
	cur := m.K.Current()
	if cur == nil {
		return
	}
	if s, ok := m.sessions[cur.Pid]; ok && s.active {
		s.drainGuestBuffer()
	}
}

// drainGuestBuffer copies logged GVAs from the guest-level PML buffer into
// the per-process ring and resets the index. Reads go through the kernel
// physical path (no PML pollution); the vmread/vmwrite pair is the EPML
// monitoring-phase cost (M7/M8).
//
// The hardware index register describes the *armed* buffer, which belongs
// to the scheduled tracked process; any other session's buffer was already
// drained when its process was scheduled out, so draining it again would
// read stale entries and clobber the live index.
func (s *session) drainGuestBuffer() {
	k := s.mod.K
	if cur := k.Current(); cur != nil && cur != s.proc {
		return
	}
	sp := k.VCPU.Prof.Begin(prof.SubCore, "ring_drain")
	defer sp.End()
	tr, ev := k.VCPU.Tracer, k.VCPU.Met
	var start int64
	if tr != nil || ev != nil {
		start = k.Clock.Nanos()
	}
	idx, err := k.VCPU.GuestVMRead(vmcs.FieldGuestPMLIndex)
	if err != nil {
		return
	}
	first := int(idx+1) & 0xFFFF
	if first >= vmcs.PMLBufferEntries {
		return // empty
	}
	for slot := first; slot < vmcs.PMLBufferEntries; slot++ {
		raw, err := k.VCPU.KernelReadU64GPA(s.guestBufGPA + mem.GPA(slot*8))
		if err != nil {
			return
		}
		s.ring.Push(raw)
	}
	_ = k.VCPU.GuestVMWrite(vmcs.FieldGuestPMLIndex, vmcs.PMLResetIndex)
	now := k.Clock.Nanos()
	if tr.Enabled(trace.KindRingDrain) {
		tr.Emit(trace.Record{Kind: trace.KindRingDrain, VM: int32(k.VCPU.ID), TS: start,
			Cost: now - start, Arg: int64(vmcs.PMLBufferEntries - first)})
	}
	ev.Observe(trace.KindRingDrain, now, now-start, int64(vmcs.PMLBufferEntries-first))
}
