package tracking

import (
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/trace"
)

// PMLTechnique adapts an OoH session (SPML or EPML, per the module's mode)
// to the Technique interface. The heavy lifting - hypercalls, ring drains,
// reverse mapping - lives in internal/core; this adapter only does phase
// accounting.
type PMLTechnique struct {
	lib     *core.Lib
	pid     guestos.Pid
	session *core.Session
	stats   Stats
	w       watch

	// ReuseReverseIndex enables the SPML reverse-index cache (set before
	// Init). Boehm's integration uses it (paper footnote 2); CRIU's does
	// not.
	ReuseReverseIndex bool
}

// NewPML returns the SPML or EPML technique (depending on how the module
// was loaded) for pid.
func NewPML(lib *core.Lib, pid guestos.Pid) *PMLTechnique {
	k := lib.Module().K
	return &PMLTechnique{lib: lib, pid: pid, w: watch{clock: k.Clock, vcpu: k.VCPU}}
}

// Name implements Technique.
func (t *PMLTechnique) Name() string { return t.lib.Module().Mode.String() }

// Kind implements Technique.
func (t *PMLTechnique) Kind() costmodel.Technique {
	if t.lib.Module().Mode == core.ModeSPML {
		return costmodel.SPML
	}
	return costmodel.EPML
}

// Init implements Technique: open an OoH session (ioctl + hypercall).
func (t *PMLTechnique) Init() error {
	return t.w.phase(&t.stats.InitTime, trace.KindTrackInit, t.Kind(), nil, func() error {
		s, err := t.lib.Open(t.pid)
		if err != nil {
			return err
		}
		s.ReuseReverseIndex = t.ReuseReverseIndex
		t.session = s
		return nil
	})
}

// Collect implements Technique: fetch from the ring (and reverse-map for
// SPML).
func (t *PMLTechnique) Collect() ([]mem.GVA, error) {
	var out []mem.GVA
	err := t.w.phase(&t.stats.CollectTime, trace.KindTrackCollect, t.Kind(),
		func() int64 { return int64(len(out)) }, func() error {
			var err error
			out, err = t.session.Fetch()
			return err
		})
	if err != nil {
		return nil, err
	}
	t.stats.Collections++
	t.stats.Reported += int64(len(out))
	return out, nil
}

// LastBreakdown exposes the Fig. 3 decomposition of the last Collect.
func (t *PMLTechnique) LastBreakdown() core.FetchBreakdown {
	if t.session == nil {
		return core.FetchBreakdown{}
	}
	return t.session.LastBreakdown
}

// Close implements Technique.
func (t *PMLTechnique) Close() error {
	if t.session == nil {
		return nil
	}
	return t.w.phase(&t.stats.CloseTime, trace.KindTrackClose, t.Kind(), nil, func() error {
		return t.session.Close()
	})
}

// Stats implements Technique.
func (t *PMLTechnique) Stats() Stats { return t.stats }
