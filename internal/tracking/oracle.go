package tracking

import (
	"repro/internal/costmodel"
	"repro/internal/cpu"
	"repro/internal/guestos"
	"repro/internal/mem"
)

// OracleTechnique is the paper's hypothetical zero-cost tracker (§VI-B):
// E(C_oracle) = 0 and it inflicts nothing on the tracked process. It hooks
// the simulator's write observer, which charges no virtual time, and is
// the ground truth the property-based completeness tests compare real
// techniques against.
type OracleTechnique struct {
	vcpu  *cpu.VCPU
	proc  *guestos.Process
	dirty map[mem.GVA]struct{}
	order []mem.GVA
	hook  int
	stats Stats
}

// NewOracle returns the oracle technique for the process.
func NewOracle(proc *guestos.Process) *OracleTechnique {
	return &OracleTechnique{
		vcpu:  proc.Kernel().VCPU,
		proc:  proc,
		dirty: make(map[mem.GVA]struct{}),
	}
}

// Name implements Technique.
func (t *OracleTechnique) Name() string { return "oracle" }

// Kind implements Technique.
func (t *OracleTechnique) Kind() costmodel.Technique { return costmodel.Oracle }

// Init implements Technique: register on the vCPU's write-hook list.
func (t *OracleTechnique) Init() error {
	t.hook = t.vcpu.AddWriteHook(func(gva mem.GVA) {
		if t.proc.Kernel().Current() != t.proc {
			return
		}
		if _, dup := t.dirty[gva]; !dup {
			t.dirty[gva] = struct{}{}
			t.order = append(t.order, gva)
		}
	})
	return nil
}

// Collect implements Technique.
func (t *OracleTechnique) Collect() ([]mem.GVA, error) {
	out := make([]mem.GVA, len(t.order))
	copy(out, t.order)
	t.order = t.order[:0]
	t.dirty = make(map[mem.GVA]struct{})
	t.stats.Collections++
	t.stats.Reported += int64(len(out))
	return out, nil
}

// Close implements Technique: unchain the hook.
func (t *OracleTechnique) Close() error {
	t.vcpu.RemoveWriteHook(t.hook)
	return nil
}

// Stats implements Technique.
func (t *OracleTechnique) Stats() Stats { return t.stats }
