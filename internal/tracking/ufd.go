package tracking

import (
	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/trace"
)

// UfdTechnique tracks dirty pages with userfaultfd in write_protect mode
// (§III-A): Init registers the tracked process's regions and write-protects
// them; each first write then suspends the tracked thread, notifies this
// tracker in userspace, is recorded, and the page is write-unprotected;
// Collect returns the record and re-protects those pages.
type UfdTechnique struct {
	k     *guestos.Kernel
	proc  *guestos.Process
	dirty map[mem.GVA]struct{}
	order []mem.GVA
	stats Stats
	w     watch
}

// NewUfd returns the ufd technique for the process.
func NewUfd(proc *guestos.Process) *UfdTechnique {
	return &UfdTechnique{
		k:     proc.Kernel(),
		proc:  proc,
		dirty: make(map[mem.GVA]struct{}),
		w:     watch{clock: proc.Kernel().Clock, vcpu: proc.Kernel().VCPU},
	}
}

// Name implements Technique.
func (t *UfdTechnique) Name() string { return "ufd" }

// Kind implements Technique.
func (t *UfdTechnique) Kind() costmodel.Technique { return costmodel.Ufd }

// Init implements Technique: UFFDIO_REGISTER in missing+write-protect mode
// and write-protect every present page. The missing mode is what covers
// pages populated after registration (fresh heap growth) - with pure
// write-protect mode those would be dirtied invisibly.
func (t *UfdTechnique) Init() error {
	return t.w.phase(&t.stats.InitTime, trace.KindTrackInit, t.Kind(), nil, func() error {
		for _, r := range t.proc.Regions() {
			mode := guestos.UfdMissing | guestos.UfdWriteProtect
			if err := t.proc.UfdRegister(r, mode, t.handle); err != nil {
				return err
			}
		}
		return nil
	})
}

// handle runs in the tracker when the tracked thread faults: record the
// page, then resolve - install a zero page for missing faults, lift the
// protection for write-protect faults - so the tracked thread resumes.
// The userspace handling cost (M6 per fault) is both the tracked thread's
// suspension and the tracker's own work; it accrues to CollectTime.
func (t *UfdTechnique) handle(ev guestos.UfdEvent) error {
	tr, evm := t.k.VCPU.Tracer, t.k.VCPU.Met
	var start int64
	if tr != nil || evm != nil {
		start = t.k.Clock.Nanos()
	}
	err := t.w.measure(&t.stats.CollectTime, func() error {
		t.k.Clock.Advance(t.k.Model.PFHUser.PerPage(ev.Proc.ReservedBytes()))
		page := ev.GVA.PageFloor()
		if _, dup := t.dirty[page]; !dup {
			t.dirty[page] = struct{}{}
			t.order = append(t.order, page)
		}
		if ev.Missing {
			return ev.Proc.UfdCopyZero(page)
		}
		return ev.Proc.UfdWriteUnprotect(page)
	})
	if err == nil {
		arg := int64(0)
		if ev.Missing {
			arg = 1
		}
		now := t.k.Clock.Nanos()
		if tr.Enabled(trace.KindUfdFault) {
			tr.Emit(trace.Record{Kind: trace.KindUfdFault, VM: int32(t.k.VCPU.ID), TS: start,
				Cost: now - start, Addr: uint64(ev.GVA.PageFloor()), Arg: arg})
		}
		evm.Observe(trace.KindUfdFault, now, now-start, arg)
	}
	return err
}

// Collect implements Technique: hand over the recorded set and re-protect
// those pages for the next round.
func (t *UfdTechnique) Collect() ([]mem.GVA, error) {
	var out []mem.GVA
	err := t.w.phase(&t.stats.CollectTime, trace.KindTrackCollect, t.Kind(),
		func() int64 { return int64(len(out)) }, func() error {
			out = make([]mem.GVA, len(t.order))
			copy(out, t.order)
			for _, gva := range t.order {
				if err := t.proc.UfdWriteProtect(gva); err != nil {
					return err
				}
			}
			t.order = t.order[:0]
			t.dirty = make(map[mem.GVA]struct{})
			return nil
		})
	if err != nil {
		return nil, err
	}
	t.stats.Collections++
	t.stats.Reported += int64(len(out))
	return out, nil
}

// Close implements Technique: unregister and restore write access.
func (t *UfdTechnique) Close() error {
	return t.w.phase(&t.stats.CloseTime, trace.KindTrackClose, t.Kind(), nil, func() error {
		for _, r := range t.proc.Regions() {
			t.proc.UfdUnregister(r)
			for gva := r.Start; gva < r.End; gva = gva.Add(mem.PageSize) {
				if pte, ok := t.proc.PT.Lookup(gva); ok && pte.UfdWriteProtected() {
					if err := t.proc.UfdWriteUnprotect(gva); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
}

// Stats implements Technique.
func (t *UfdTechnique) Stats() Stats { return t.stats }
