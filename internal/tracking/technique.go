// Package tracking provides the uniform Tracker-side interface over the
// four dirty page tracking techniques the paper compares - /proc, ufd,
// SPML, EPML - plus the hypothetical zero-cost oracle of §VI-B.
//
// Every technique follows the paper's four-phase Tracker structure
// (Fig. 1): initialization (Init), monitoring (implicit: the tracked
// process runs), collection (Collect), and exploitation (the caller's
// business: checkpointing, GC marking, ...).
package tracking

import (
	"sync/atomic"
	"time"

	"repro/internal/costmodel"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pagesReported counts dirty page addresses delivered by Collect across
// every technique in the process - the numerator of the benchmark
// harness's pages-tracked/sec throughput metric. One atomic add per
// collection round (not per page), so the hot path never sees it.
var pagesReported atomic.Int64

// PagesReported returns the number of dirty page addresses Collect calls
// have delivered process-wide since the last reset.
func PagesReported() int64 { return pagesReported.Load() }

// ResetPagesReported zeroes the process-wide page counter. Benchmark
// harnesses call it before a measured run.
func ResetPagesReported() { pagesReported.Store(0) }

// Stats accumulates the technique-attributed virtual time and counts: the
// measured E(C_x) the formula engine cross-checks in Table IV.
type Stats struct {
	InitTime    time.Duration // phase 1
	CollectTime time.Duration // phase 3, cumulative
	CloseTime   time.Duration
	Collections int
	Reported    int64 // dirty page addresses returned, cumulative
}

// TechniqueTime returns the technique's total own time, E(C_x).
func (s Stats) TechniqueTime() time.Duration { return s.InitTime + s.CollectTime + s.CloseTime }

// Technique is one dirty page tracking method bound to one tracked process.
type Technique interface {
	// Name returns the paper's name for the technique.
	Name() string
	// Kind returns the cost-model identity of the technique.
	Kind() costmodel.Technique
	// Init performs the initialization phase (clear_refs, ufd
	// registration, PML arming...). Monitoring starts when Init returns.
	Init() error
	// Collect returns the addresses of pages dirtied since Init or the
	// previous Collect, de-duplicated, and re-arms monitoring.
	Collect() ([]mem.GVA, error)
	// Close ends monitoring and releases technique resources.
	Close() error
	// Stats returns the accumulated phase times and counts.
	Stats() Stats
}

// watch is a tiny helper binding a clock (and the vCPU's tracer) to phase
// accounting.
type watch struct {
	clock *sim.Clock
	vcpu  *cpu.VCPU
}

func (w watch) measure(dst *time.Duration, fn func() error) error {
	sw := sim.StartWatch(w.clock)
	err := fn()
	*dst += sw.Elapsed()
	return err
}

// phase is measure plus a trace record of the phase span. arg, evaluated
// after fn so it can report results (pages collected), supplies the
// record's Arg; nil means the technique's cost-model id.
func (w watch) phase(dst *time.Duration, kind trace.Kind, tech costmodel.Technique,
	arg func() int64, fn func() error) error {
	var tr *trace.Tracer
	var ev *metrics.Events
	if w.vcpu != nil {
		tr, ev = w.vcpu.Tracer, w.vcpu.Met
	}
	var start int64
	if tr != nil || ev != nil {
		start = w.clock.Nanos()
	}
	sp := w.tap().Begin(prof.SubTracking, phaseOp(kind))
	defer sp.End()
	err := w.measure(dst, fn)
	if err == nil && kind == trace.KindTrackCollect && arg != nil {
		pagesReported.Add(arg())
	}
	if err == nil && (tr != nil || ev != nil) {
		a := int64(tech)
		if arg != nil {
			a = arg()
		}
		now := w.clock.Nanos()
		if tr.Enabled(kind) {
			tr.Emit(trace.Record{Kind: kind, VM: int32(w.vcpu.ID), TS: start,
				Cost: now - start, Arg: a})
		}
		ev.Observe(kind, now, now-start, a)
	}
	return err
}

// tap returns the profiler tap, nil when the watch has no vCPU bound.
func (w watch) tap() *prof.Tap {
	if w.vcpu == nil {
		return nil
	}
	return w.vcpu.Prof
}

// phaseOp maps a tracking-phase trace kind to its profiler span op.
func phaseOp(kind trace.Kind) string {
	switch kind {
	case trace.KindTrackInit:
		return "init"
	case trace.KindTrackCollect:
		return "collect"
	case trace.KindTrackClose:
		return "close"
	}
	return kind.String()
}
