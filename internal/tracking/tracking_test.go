package tracking_test

import (
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// TestQuickCompleteness is the property-based form of the completeness
// invariant: for arbitrary write scripts (random pages, random offsets,
// random collection points), every technique reports every truly written
// page. testing/quick generates the scripts.
func TestQuickCompleteness(t *testing.T) {
	for _, kind := range machine.RealTechniques() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			prop := func(script []uint16, seed uint64) bool {
				m, err := machine.New(machine.Config{})
				if err != nil {
					return false
				}
				g := m.Guest(0)
				proc := g.Kernel.Spawn("q")
				const pages = 64
				region, err := proc.Mmap(pages*mem.PageSize, true)
				if err != nil {
					return false
				}
				tech, err := g.NewTechnique(kind, proc)
				if err != nil {
					return false
				}
				if err := tech.Init(); err != nil {
					return false
				}
				ver := tracking.NewVerifier(proc)
				defer ver.Stop()
				ver.Reset()
				rng := sim.NewRNG(seed)
				for _, op := range script {
					page := int(op) % pages
					off := rng.Uint64n(mem.PageSize/8) * 8
					gva := region.Start.Add(uint64(page)*mem.PageSize + off)
					if err := proc.WriteU64(gva, uint64(op)); err != nil {
						return false
					}
					if op%17 == 0 { // occasional mid-script collection
						got, err := tech.Collect()
						if err != nil || ver.MustComplete(got) != nil {
							return false
						}
						ver.Reset()
					}
				}
				got, err := tech.Collect()
				if err != nil {
					return false
				}
				return ver.MustComplete(got) == nil
			}
			cfg := &quick.Config{MaxCount: 15}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStatsAccumulate sanity-checks the phase accounting contract.
func TestStatsAccumulate(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("s")
	region, err := proc.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	tech, err := g.NewTechnique(costmodel.Proc, proc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tech.Init(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := proc.WriteU64(region.Start, uint64(round)); err != nil {
			t.Fatal(err)
		}
		if _, err := tech.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	s := tech.Stats()
	if s.Collections != 3 {
		t.Errorf("Collections = %d", s.Collections)
	}
	if s.Reported < 3 {
		t.Errorf("Reported = %d", s.Reported)
	}
	if s.InitTime <= 0 || s.CollectTime <= 0 {
		t.Errorf("times not accumulated: init=%v collect=%v", s.InitTime, s.CollectTime)
	}
	if s.TechniqueTime() != s.InitTime+s.CollectTime+s.CloseTime {
		t.Error("TechniqueTime mismatch")
	}
}

// TestOracleZeroCost: the oracle adds no virtual time at all.
func TestOracleZeroCost(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("o")
	region, err := proc.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	tech, _ := g.NewTechnique(costmodel.Oracle, proc)
	before := g.Kernel.Clock.Nanos()
	if err := tech.Init(); err != nil {
		t.Fatal(err)
	}
	if g.Kernel.Clock.Nanos() != before {
		t.Error("oracle Init advanced the clock")
	}
	if err := proc.WriteU64(region.Start, 1); err != nil {
		t.Fatal(err)
	}
	mid := g.Kernel.Clock.Nanos()
	got, err := tech.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if g.Kernel.Clock.Nanos() != mid {
		t.Error("oracle Collect advanced the clock")
	}
	if len(got) != 1 || got[0] != region.Start {
		t.Errorf("oracle collected %v", got)
	}
}

// TestStackedVerifiersStopOrder is the regression test for the hook
// unchaining bug: Stop() used to restore a saved previous WriteHook
// unconditionally, so stopping verifiers in registration (FIFO) order
// silently detached the ones stacked after. With the id-based hook list,
// both stop orders must leave the surviving verifier recording.
func TestStackedVerifiersStopOrder(t *testing.T) {
	for _, order := range []string{"fifo", "lifo"} {
		t.Run(order, func(t *testing.T) {
			m, err := machine.New(machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			g := m.Guest(0)
			proc := g.Kernel.Spawn("v")
			region, err := proc.Mmap(8*mem.PageSize, true)
			if err != nil {
				t.Fatal(err)
			}
			v1 := tracking.NewVerifier(proc)
			v2 := tracking.NewVerifier(proc)

			if err := proc.WriteU64(region.Start, 1); err != nil {
				t.Fatal(err)
			}
			if len(v1.Truth()) != 1 || len(v2.Truth()) != 1 {
				t.Fatalf("before stop: truths %v / %v, want 1 page each",
					v1.Truth(), v2.Truth())
			}

			var stopped, survivor *tracking.Verifier
			if order == "fifo" {
				stopped, survivor = v1, v2
			} else {
				stopped, survivor = v2, v1
			}
			stopped.Stop()
			survivor.Reset()

			second := region.Start.Add(mem.PageSize)
			if err := proc.WriteU64(second, 2); err != nil {
				t.Fatal(err)
			}
			truth := survivor.Truth()
			if len(truth) != 1 || truth[0] != second {
				t.Errorf("%s: surviving verifier recorded %v, want [%v]",
					order, truth, second)
			}
			survivor.Stop()
			if n := g.Kernel.VCPU.WriteHookCount(); n != 0 {
				t.Errorf("%s: %d hooks left attached after stopping both", order, n)
			}
		})
	}
}
