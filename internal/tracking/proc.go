package tracking

import (
	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ProcTechnique tracks dirty pages through /proc/PID/pagemap soft-dirty
// bits (§III-B): Init writes 4 to clear_refs (clearing soft-dirty bits and
// write-protecting every page), the first write to each page then faults
// into the kernel which sets its soft-dirty bit, and Collect reads pagemap
// bit 55 and re-clears.
type ProcTechnique struct {
	k     *guestos.Kernel
	pid   guestos.Pid
	stats Stats
	w     watch
}

// NewProc returns the /proc technique for pid.
func NewProc(k *guestos.Kernel, pid guestos.Pid) *ProcTechnique {
	return &ProcTechnique{k: k, pid: pid, w: watch{clock: k.Clock, vcpu: k.VCPU}}
}

// Name implements Technique.
func (t *ProcTechnique) Name() string { return "/proc" }

// Kind implements Technique.
func (t *ProcTechnique) Kind() costmodel.Technique { return costmodel.Proc }

// Init implements Technique: echo 4 > /proc/PID/clear_refs.
func (t *ProcTechnique) Init() error {
	return t.w.phase(&t.stats.InitTime, trace.KindTrackInit, t.Kind(), nil, func() error {
		return t.k.ClearRefs(t.pid)
	})
}

// Collect implements Technique: read soft-dirty bits, then re-clear them
// for the next monitoring round.
func (t *ProcTechnique) Collect() ([]mem.GVA, error) {
	var dirty []mem.GVA
	err := t.w.phase(&t.stats.CollectTime, trace.KindTrackCollect, t.Kind(),
		func() int64 { return int64(len(dirty)) }, func() error {
			var err error
			dirty, err = t.k.SoftDirtyPages(t.pid)
			if err != nil {
				return err
			}
			return t.k.ClearRefs(t.pid)
		})
	if err != nil {
		return nil, err
	}
	t.stats.Collections++
	t.stats.Reported += int64(len(dirty))
	return dirty, nil
}

// Close implements Technique. /proc needs no teardown, but a final
// clear_refs restores write permissions lazily via faults; nothing to do.
func (t *ProcTechnique) Close() error { return nil }

// Stats implements Technique.
func (t *ProcTechnique) Stats() Stats { return t.stats }
