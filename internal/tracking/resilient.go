package tracking

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pgtable"
	"repro/internal/prof"
	"repro/internal/trace"
)

// Recovery-policy constants. Backoffs are virtual time, charged to the
// simulation clock so recovery overhead shows up in Stats and traces like
// any other technique cost.
const (
	// maxTransientRetries bounds how often one operation is retried after
	// a faults.ErrTransient failure before the Resilient wrapper gives up
	// on it (degrading at Init, falling back to the rescan net at Collect).
	maxTransientRetries = 4
	// baseBackoff is the wait before the first retry; it doubles per
	// attempt (20, 40, 80, 160 us).
	baseBackoff = 20 * time.Microsecond
	// stallCost is the extra virtual time an injected CollectStall adds in
	// front of a collection.
	stallCost = 200 * time.Microsecond
)

// DefaultLadder is the degradation order NewResilient walks when a rung's
// capability turns out to be absent: best technique first, the
// always-available /proc rung last.
func DefaultLadder() []costmodel.Technique {
	return []costmodel.Technique{costmodel.EPML, costmodel.SPML, costmodel.Ufd, costmodel.Proc}
}

// LadderFrom returns the DefaultLadder suffix starting at preferred, so a
// caller asking for SPML degrades through ufd to /proc but never "upgrades"
// to EPML. An unknown preferred technique yields a one-rung ladder.
func LadderFrom(preferred costmodel.Technique) []costmodel.Technique {
	full := DefaultLadder()
	for i, k := range full {
		if k == preferred {
			return full[i:]
		}
	}
	return []costmodel.Technique{preferred}
}

// Factory constructs the concrete technique for one ladder rung. It must
// not perform the technique's Init; Resilient drives that itself so it can
// classify the failure.
type Factory func(kind costmodel.Technique) (Technique, error)

// Recovery accumulates what the Resilient wrapper had to do to keep its
// reports oracle-exact, for tables and CLI summaries.
type Recovery struct {
	Retries      int           // transient failures retried
	BackoffTime  time.Duration // virtual time spent waiting between retries
	Degradations int           // ladder rungs descended at Init
	Rescans      int           // lossy epochs repaired by soft-dirty rescan
	RescuedPages int64         // dirty pages recovered by those rescans
	Stalls       int           // injected Collect stalls absorbed
}

// Resilient wraps a ladder of tracking techniques with fault recovery:
//
//   - At Init it probes capabilities, descending the ladder (EPML -> SPML ->
//     ufd -> /proc) past rungs whose Init fails with faults.ErrUnsupported
//     or with transient failures that survive the bounded retries.
//   - Transient failures (faults.ErrTransient) of any phase are retried up
//     to maxTransientRetries times with doubling virtual-time backoff,
//     charged to the clock and visible in Stats and in KindTrackRetry
//     trace records.
//   - When the armed fault spec can silently lose logged pages
//     (Injector.LossPossible), Resilient arms an independent safety net:
//     a zero-cost write-set oracle detects a lossy collection, and the
//     missed pages are recovered from a soft-dirty rescan of the epoch
//     (clear_refs at Init and after every Collect keeps the soft-dirty
//     window aligned with collection epochs). Detection is free; recovery
//     pays the full pagemap-walk and clear_refs costs.
//
// Resilient implements Technique. Its Stats cover the whole wrapped
// operation - inner phases plus recovery overhead. It deliberately emits no
// KindTrackInit/KindTrackCollect records of its own: the inner technique
// already emits them, and per-kind trace summaries must not double-count;
// recovery actions get their own kinds instead (KindTrackRetry,
// KindTrackDegrade, KindTrackRescan).
type Resilient struct {
	proc    *guestos.Process
	k       *guestos.Kernel
	inj     *faults.Injector
	factory Factory
	ladder  []costmodel.Technique

	inner Technique
	ver   *Verifier
	// resync marks that the previous epoch's ring was abandoned after
	// exhausted retries: the next inner report may carry a stale ring
	// generation and is filtered against the oracle's current epoch.
	resync bool

	stats Stats
	rec   Recovery
	w     watch
}

// NewResilient wraps the given degradation ladder (DefaultLadder when
// empty) around factory-built techniques for proc. inj may be nil (no
// injected faults: the wrapper is then pass-through plus phase accounting).
func NewResilient(proc *guestos.Process, inj *faults.Injector, factory Factory,
	ladder ...costmodel.Technique) *Resilient {
	if len(ladder) == 0 {
		ladder = DefaultLadder()
	}
	k := proc.Kernel()
	return &Resilient{
		proc:    proc,
		k:       k,
		inj:     inj,
		factory: factory,
		ladder:  ladder,
		w:       watch{clock: k.Clock, vcpu: k.VCPU},
	}
}

// Name implements Technique.
func (r *Resilient) Name() string {
	if r.inner == nil {
		return "resilient"
	}
	return "resilient(" + r.inner.Name() + ")"
}

// Kind implements Technique: the active rung's identity (the preferred rung
// before Init).
func (r *Resilient) Kind() costmodel.Technique {
	if r.inner == nil {
		return r.ladder[0]
	}
	return r.inner.Kind()
}

// Active returns the rung currently in use (valid after Init).
func (r *Resilient) Active() costmodel.Technique { return r.Kind() }

// Recovery returns the accumulated recovery statistics.
func (r *Resilient) Recovery() Recovery { return r.rec }

// Init implements Technique: acquire a working rung, then arm the loss
// safety net if the fault spec calls for it.
func (r *Resilient) Init() error {
	return r.w.measure(&r.stats.InitTime, func() error {
		if err := r.acquire(); err != nil {
			return err
		}
		if r.inj.LossPossible() {
			r.ver = NewVerifier(r.proc)
			// Align the soft-dirty window with the first epoch.
			if err := r.k.ClearRefs(r.proc.Pid); err != nil {
				return err
			}
		}
		return nil
	})
}

// acquire walks the ladder until one rung's Init succeeds.
func (r *Resilient) acquire() error {
	sp := r.w.tap().Begin(prof.SubTracking, "acquire")
	defer sp.End()
	var lastErr error
	for i, kind := range r.ladder {
		inner, err := r.factory(kind)
		if err != nil {
			return err
		}
		err = r.withRetry(inner.Init)
		if err == nil {
			r.inner = inner
			return nil
		}
		if !errors.Is(err, faults.ErrUnsupported) && !errors.Is(err, faults.ErrTransient) {
			return err
		}
		// Capability absent (or persistently failing): release whatever
		// the rung half-initialized and descend.
		_ = inner.Close()
		lastErr = err
		if i+1 < len(r.ladder) {
			r.rec.Degradations++
			now := r.w.clock.Nanos()
			arg := int64(kind)<<8 | int64(r.ladder[i+1])
			if tr := r.w.vcpu.Tracer; tr.Enabled(trace.KindTrackDegrade) {
				tr.Emit(trace.Record{Kind: trace.KindTrackDegrade, VM: int32(r.w.vcpu.ID),
					TS: now, Arg: arg})
			}
			r.w.vcpu.Met.Observe(trace.KindTrackDegrade, now, 0, arg)
		}
	}
	return fmt.Errorf("tracking: every ladder rung failed: %w", lastErr)
}

// withRetry runs op, retrying transient failures with doubling virtual-time
// backoff. The final error (nil, non-transient, or the transient that
// survived all retries) is returned.
func (r *Resilient) withRetry(op func() error) error {
	backoff := baseBackoff
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !errors.Is(err, faults.ErrTransient) || attempt > maxTransientRetries {
			return err
		}
		r.rec.Retries++
		r.rec.BackoffTime += backoff
		if tr := r.w.vcpu.Tracer; tr.Enabled(trace.KindTrackRetry) {
			tr.Emit(trace.Record{Kind: trace.KindTrackRetry, VM: int32(r.w.vcpu.ID),
				TS: r.w.clock.Nanos(), Cost: int64(backoff), Arg: int64(attempt)})
		}
		r.w.vcpu.Met.Observe(trace.KindTrackRetry, r.w.clock.Nanos(), int64(backoff), int64(attempt))
		sp := r.w.tap().Begin(prof.SubTracking, "retry")
		r.w.clock.Advance(backoff)
		sp.End()
		backoff *= 2
	}
}

// Collect implements Technique: collect from the active rung with retries,
// then check the epoch against the oracle and repair any loss from a
// soft-dirty rescan.
func (r *Resilient) Collect() ([]mem.GVA, error) {
	var out []mem.GVA
	err := r.w.measure(&r.stats.CollectTime, func() error {
		if r.inj.Fire(faults.CollectStall) {
			r.w.vcpu.FaultRecord(faults.CollectStall, 0)
			r.rec.Stalls++
			r.w.clock.Advance(stallCost)
		}
		err := r.withRetry(func() error {
			var e error
			out, e = r.inner.Collect()
			return e
		})
		switch {
		case err == nil:
			if r.resync {
				// The previous epoch's ring was abandoned mid-failure, so
				// this drain may replay a stale generation: keep only pages
				// actually written this epoch.
				kept := out[:0]
				for _, gva := range out {
					if r.ver.Has(gva) {
						kept = append(kept, gva)
					}
				}
				out = kept
				r.resync = false
			}
		case errors.Is(err, faults.ErrTransient) && r.ver != nil:
			// Retries exhausted. Abandon the ring for this epoch - the
			// rescan below recovers every page - and resynchronize on the
			// next collection.
			out = nil
			r.resync = true
		default:
			return err
		}
		if r.ver != nil {
			if missing := r.ver.CheckComplete(out); len(missing) > 0 {
				recovered, err := r.rescan(missing, &out)
				if err != nil {
					return err
				}
				r.rec.Rescans++
				r.rec.RescuedPages += int64(recovered)
			}
			// Re-align the soft-dirty window and the oracle with the next
			// epoch.
			if err := r.k.ClearRefs(r.proc.Pid); err != nil {
				return err
			}
			r.ver.Reset()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.stats.Collections++
	r.stats.Reported += int64(len(out))
	return out, nil
}

// rescan repairs a lossy epoch: a full soft-dirty scan of the process
// (paying the pagemap-walk cost), merged with the report restricted to the
// pages the oracle says were missed. The soft-dirty set is a superset of
// the epoch's true write set (clear_refs ran at the epoch's start), so the
// intersection recovers exactly the missing pages.
func (r *Resilient) rescan(missing []mem.GVA, out *[]mem.GVA) (int, error) {
	var start int64
	tr, ev := r.w.vcpu.Tracer, r.w.vcpu.Met
	if tr != nil || ev != nil {
		start = r.w.clock.Nanos()
	}
	sp := r.w.tap().Begin(prof.SubTracking, "rescan")
	defer sp.End()
	sd, err := r.k.SoftDirtyPages(r.proc.Pid)
	if err != nil {
		return 0, err
	}
	missSet := make(map[mem.GVA]struct{}, len(missing))
	for _, gva := range missing {
		missSet[gva.PageFloor()] = struct{}{}
	}
	recovered := 0
	for _, gva := range sd {
		if _, miss := missSet[gva.PageFloor()]; miss {
			*out = append(*out, gva.PageFloor())
			delete(missSet, gva.PageFloor())
			recovered++
			// Re-arm guest-level logging for the rescued page: a lost EPML
			// entry leaves the PTE dirty bit set, which would suppress
			// logging of the page's next write (EPML logs on the clean ->
			// dirty transition only) and force a rescan every epoch.
			_ = r.proc.PT.ClearFlags(gva.PageFloor(), pgtable.FlagDirty)
		}
	}
	now := r.w.clock.Nanos()
	if tr.Enabled(trace.KindTrackRescan) {
		tr.Emit(trace.Record{Kind: trace.KindTrackRescan, VM: int32(r.w.vcpu.ID),
			TS: start, Cost: now - start, Arg: int64(recovered)})
	}
	if ev != nil {
		ev.Observe(trace.KindTrackRescan, now, now-start, int64(recovered))
		ev.Count(metrics.SubTracking, "repaired_pages", "", int64(recovered))
	}
	return recovered, nil
}

// Close implements Technique: disarm the safety net and close the active
// rung (with retries - disable_logging can fail transiently too).
func (r *Resilient) Close() error {
	return r.w.measure(&r.stats.CloseTime, func() error {
		if r.ver != nil {
			r.ver.Stop()
			r.ver = nil
		}
		if r.inner == nil {
			return nil
		}
		return r.withRetry(r.inner.Close)
	})
}

// Stats implements Technique: phase times of the whole wrapped operation,
// recovery overhead included.
func (r *Resilient) Stats() Stats { return r.stats }
