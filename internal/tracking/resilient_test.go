package tracking_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// resilientRig is one machine + tracked process + a stacked independent
// verifier (distinct from the wrapper's internal one, so the test oracle
// works even when the wrapper's net is off).
type resilientRig struct {
	g     *machine.Guest
	pages int
	tech  *tracking.Resilient
	ver   *tracking.Verifier
	write func(t *testing.T, page int, val uint64)
}

func newResilientRig(t *testing.T, spec string, preferred costmodel.Technique) *resilientRig {
	t.Helper()
	parsed, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var inj *faults.Injector
	if !parsed.Empty() {
		inj = faults.New(parsed, 0x5EED)
	}
	m, err := machine.New(machine.Config{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("victim")
	const pages = 96
	region, err := proc.Mmap(pages*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rig := &resilientRig{g: g, pages: pages}
	rig.tech = g.NewResilient(preferred, proc)
	rig.ver = tracking.NewVerifier(proc)
	rig.write = func(t *testing.T, page int, val uint64) {
		t.Helper()
		gva := region.Start.Add(uint64(page) * mem.PageSize)
		if err := proc.WriteU64(gva, val); err != nil {
			t.Fatalf("write page %d: %v", page, err)
		}
	}
	return rig
}

// checkExact fails unless got == the stacked verifier's truth, both
// directions (no missing pages, no extras).
func checkExact(t *testing.T, ver *tracking.Verifier, got []mem.GVA) {
	t.Helper()
	truth := ver.Truth()
	gotSet := make(map[mem.GVA]struct{}, len(got))
	for _, gva := range got {
		gotSet[gva.PageFloor()] = struct{}{}
	}
	truthSet := make(map[mem.GVA]struct{}, len(truth))
	for _, gva := range truth {
		truthSet[gva] = struct{}{}
	}
	for _, gva := range truth {
		if _, ok := gotSet[gva]; !ok {
			t.Errorf("missing dirty page %v", gva)
		}
	}
	for gva := range gotSet {
		if _, ok := truthSet[gva]; !ok {
			t.Errorf("extra reported page %v (never written this epoch)", gva)
		}
	}
}

// driveEpochs runs several write-then-collect epochs against the rig,
// checking oracle exactness at each collection.
func driveEpochs(t *testing.T, rig *resilientRig, epochs int, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	for e := 0; e < epochs; e++ {
		rig.ver.Reset()
		n := 8 + int(rng.Uint64n(24))
		for i := 0; i < n; i++ {
			rig.write(t, int(rng.Uint64n(uint64(rig.pages))), rng.Uint64())
		}
		got, err := rig.tech.Collect()
		if err != nil {
			t.Fatalf("epoch %d: Collect: %v", e, err)
		}
		checkExact(t, rig.ver, got)
	}
}

func TestResilientPassThroughWithoutFaults(t *testing.T) {
	rig := newResilientRig(t, "", costmodel.EPML)
	defer rig.ver.Stop()
	if err := rig.tech.Init(); err != nil {
		t.Fatal(err)
	}
	if got := rig.tech.Active(); got != costmodel.EPML {
		t.Errorf("active rung = %v, want EPML", got)
	}
	if name := rig.tech.Name(); name != "resilient(EPML)" {
		t.Errorf("Name = %q", name)
	}
	driveEpochs(t, rig, 5, 1)
	rec := rig.tech.Recovery()
	if rec != (tracking.Recovery{}) {
		t.Errorf("fault-free run accumulated recovery work: %+v", rec)
	}
	if err := rig.tech.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResilientDegradesLadder checks every capability-absent combination
// lands on the expected rung.
func TestResilientDegradesLadder(t *testing.T) {
	cases := []struct {
		spec string
		want costmodel.Technique
		down int
	}{
		{"", costmodel.EPML, 0},
		{"epml-absent", costmodel.SPML, 1},
		{"epml-absent,spml-absent", costmodel.Ufd, 2},
		{"epml-absent,spml-absent,ufd-absent", costmodel.Proc, 3},
	}
	for _, tc := range cases {
		name := tc.spec
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			rig := newResilientRig(t, tc.spec, costmodel.EPML)
			defer rig.ver.Stop()
			if err := rig.tech.Init(); err != nil {
				t.Fatal(err)
			}
			if got := rig.tech.Active(); got != tc.want {
				t.Fatalf("active rung = %v, want %v", got, tc.want)
			}
			if got := rig.tech.Recovery().Degradations; got != tc.down {
				t.Errorf("degradations = %d, want %d", got, tc.down)
			}
			driveEpochs(t, rig, 4, 2)
			if err := rig.tech.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResilientLadderExhausted: when even /proc is unreachable... it never
// is, but a ladder cut short must surface the capability error.
func TestResilientLadderExhausted(t *testing.T) {
	parsed, err := faults.ParseSpec("epml-absent")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(parsed, 1)
	m, err := machine.New(machine.Config{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("victim")
	if _, err := proc.Mmap(4*mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	factory := func(kind costmodel.Technique) (tracking.Technique, error) {
		return g.NewTechnique(kind, proc)
	}
	r := tracking.NewResilient(proc, inj, factory, costmodel.EPML) // one-rung ladder
	if err := r.Init(); !errors.Is(err, faults.ErrUnsupported) {
		t.Fatalf("Init on exhausted ladder: %v, want ErrUnsupported", err)
	}
}

// TestResilientAllTechniquesAbsent walks a full ladder that excludes the
// always-available /proc rung while every capability is absent: Init must
// descend every rung, then surface the typed capability error - no panic,
// no half-armed tracker - and leave the process trackable by a later
// healthy session.
func TestResilientAllTechniquesAbsent(t *testing.T) {
	parsed, err := faults.ParseSpec("epml-absent,spml-absent,ufd-absent")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(parsed, 1)
	m, err := machine.New(machine.Config{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("victim")
	if _, err := proc.Mmap(4*mem.PageSize, true); err != nil {
		t.Fatal(err)
	}
	factory := func(kind costmodel.Technique) (tracking.Technique, error) {
		return g.NewTechnique(kind, proc)
	}
	r := tracking.NewResilient(proc, inj, factory,
		costmodel.EPML, costmodel.SPML, costmodel.Ufd) // no /proc safety rung
	if err := r.Init(); !errors.Is(err, faults.ErrUnsupported) {
		t.Fatalf("Init with every capability absent: %v, want ErrUnsupported", err)
	}
	if got := r.Recovery().Degradations; got != 2 {
		t.Errorf("degradations = %d, want 2 (EPML->SPML->ufd)", got)
	}
	// The failed ladder walk must not leave dirty logging armed.
	if g.SimVM().EnabledByHyp() {
		t.Error("dirty logging still armed after exhausted ladder")
	}
	// And the host is still usable: an unrestricted ladder lands on /proc.
	r2 := tracking.NewResilient(proc, inj, factory)
	if err := r2.Init(); err != nil {
		t.Fatalf("follow-up default-ladder session: %v", err)
	}
	if got := r2.Active(); got != costmodel.Proc {
		t.Errorf("follow-up session active rung = %v, want Proc", got)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResilientExactUnderFaultMatrix is the core acceptance property: under
// every canned fault mix, each collection's report equals the independent
// oracle's truth exactly.
func TestResilientExactUnderFaultMatrix(t *testing.T) {
	specs := []string{
		"ipi-storm/ipi-drop:0.4,ipi-dup:0.3",
		"hc-flaky/hc-enable-fail:0.3,hc-disable-fail:0.3,hc-drain-fail:0.5,hc-init-fail:0.5",
		"lossy-pml/pml-entry-loss:0.2,pml-full-exit:0.01",
		"vmcs-flaky/vmwrite-fail:0.2,collect-stall:0.3",
		"kitchen-sink/ipi-drop:0.3,pml-entry-loss:0.2,hc-drain-fail:0.4,vmwrite-fail:0.1,collect-stall:0.2",
	}
	for _, entry := range specs {
		label, spec, _ := strings.Cut(entry, "/")
		for _, preferred := range []costmodel.Technique{costmodel.EPML, costmodel.SPML} {
			t.Run(label+"/"+preferred.String(), func(t *testing.T) {
				rig := newResilientRig(t, spec, preferred)
				defer rig.ver.Stop()
				if err := rig.tech.Init(); err != nil {
					t.Fatal(err)
				}
				driveEpochs(t, rig, 8, 0xABCD)
				if err := rig.tech.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestResilientRetriesCharged: transient failures must cost virtual time
// (the backoff) and be counted.
func TestResilientRetriesCharged(t *testing.T) {
	rig := newResilientRig(t, "hc-drain-fail:0.6", costmodel.SPML)
	defer rig.ver.Stop()
	if err := rig.tech.Init(); err != nil {
		t.Fatal(err)
	}
	driveEpochs(t, rig, 10, 7)
	rec := rig.tech.Recovery()
	if rec.Retries == 0 {
		t.Fatal("no retries recorded under hc-drain-fail:0.6 across 10 epochs")
	}
	if rec.BackoffTime <= 0 {
		t.Error("retries recorded but no backoff time charged")
	}
	if rig.tech.Stats().CollectTime < rec.BackoffTime {
		t.Errorf("CollectTime %v < backoff %v: backoff not charged to the phase",
			rig.tech.Stats().CollectTime, rec.BackoffTime)
	}
}

// TestResilientStallCharged: injected Collect stalls show up in Recovery
// and in the phase time.
func TestResilientStallCharged(t *testing.T) {
	rig := newResilientRig(t, "collect-stall", costmodel.EPML)
	defer rig.ver.Stop()
	if err := rig.tech.Init(); err != nil {
		t.Fatal(err)
	}
	driveEpochs(t, rig, 3, 9)
	if got := rig.tech.Recovery().Stalls; got != 3 {
		t.Errorf("stalls = %d, want 3 (rate-1 spec, 3 epochs)", got)
	}
}

// TestResilientDeterministic: same seed, same spec => identical reports and
// identical final virtual time.
func TestResilientDeterministic(t *testing.T) {
	run := func() (string, int64) {
		rig := newResilientRig(t, "ipi-drop:0.4,hc-drain-fail:0.3,seed=99", costmodel.EPML)
		defer rig.ver.Stop()
		if err := rig.tech.Init(); err != nil {
			t.Fatal(err)
		}
		var log string
		rng := sim.NewRNG(42)
		for e := 0; e < 6; e++ {
			rig.ver.Reset()
			for i := 0; i < 20; i++ {
				rig.write(t, int(rng.Uint64n(uint64(rig.pages))), rng.Uint64())
			}
			got, err := rig.tech.Collect()
			if err != nil {
				t.Fatal(err)
			}
			pages := make([]uint64, len(got))
			for i, gva := range got {
				pages[i] = uint64(gva)
			}
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			log += fmt.Sprint(pages)
		}
		return log, rig.g.Kernel.Clock.Nanos()
	}
	log1, t1 := run()
	log2, t2 := run()
	if log1 != log2 {
		t.Error("same seed + same fault spec produced different reports")
	}
	if t1 != t2 {
		t.Errorf("same seed + same fault spec produced different virtual times: %d vs %d", t1, t2)
	}
}

// TestResilientConcurrentMachines drives independent faulted machines from
// separate goroutines - the -race check that per-machine injectors share no
// state.
func TestResilientConcurrentMachines(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rig := newResilientRig(t, "ipi-drop:0.3,pml-entry-loss:0.2", costmodel.EPML)
			defer rig.ver.Stop()
			if err := rig.tech.Init(); err != nil {
				t.Error(err)
				return
			}
			driveEpochs(t, rig, 4, uint64(w)+100)
		}(w)
	}
	wg.Wait()
}
