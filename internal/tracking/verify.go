package tracking

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/guestos"
	"repro/internal/mem"
)

// Verifier records, at zero cost, the ground-truth set of pages a process
// actually wrote, so tests can prove the completeness invariant: every
// technique must report a superset of the truly dirtied pages between two
// collection points (no false negatives - a tracker that misses a dirty
// page checkpoints stale data or frees live objects).
type Verifier struct {
	vcpu  *cpu.VCPU
	proc  *guestos.Process
	truth map[mem.GVA]struct{}
	hook  int
}

// NewVerifier starts recording writes of proc.
func NewVerifier(proc *guestos.Process) *Verifier {
	v := &Verifier{
		vcpu:  proc.Kernel().VCPU,
		proc:  proc,
		truth: make(map[mem.GVA]struct{}),
	}
	v.hook = v.vcpu.AddWriteHook(func(gva mem.GVA) {
		if proc.Kernel().Current() == proc {
			v.truth[gva] = struct{}{}
		}
	})
	return v
}

// Truth returns the pages written since the last Reset, sorted.
func (v *Verifier) Truth() []mem.GVA {
	out := make([]mem.GVA, 0, len(v.truth))
	for gva := range v.truth {
		out = append(out, gva)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears the recorded ground truth (call right after a Collect).
func (v *Verifier) Reset() { v.truth = make(map[mem.GVA]struct{}) }

// Has reports whether gva's page is in the recorded ground truth.
func (v *Verifier) Has(gva mem.GVA) bool {
	_, ok := v.truth[gva.PageFloor()]
	return ok
}

// Stop unchains the verifier from the vCPU. Removal is by hook id, so
// stacked observers (a second Verifier, an Oracle, a trace hook) keep
// firing no matter the order verifiers are stopped in.
func (v *Verifier) Stop() { v.vcpu.RemoveWriteHook(v.hook) }

// CheckComplete verifies reported covers the ground truth. It returns the
// missing pages (nil when complete).
func (v *Verifier) CheckComplete(reported []mem.GVA) []mem.GVA {
	have := make(map[mem.GVA]struct{}, len(reported))
	for _, gva := range reported {
		have[gva.PageFloor()] = struct{}{}
	}
	var missing []mem.GVA
	for gva := range v.truth {
		if _, ok := have[gva]; !ok {
			missing = append(missing, gva)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return missing
}

// MustComplete is CheckComplete for tests that want a formatted error.
func (v *Verifier) MustComplete(reported []mem.GVA) error {
	if missing := v.CheckComplete(reported); len(missing) > 0 {
		return fmt.Errorf("tracking: %d dirty pages not reported (first: %v)", len(missing), missing[0])
	}
	return nil
}
