package migration

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestMigrationTransfersAllMemoryCorrectly(t *testing.T) {
	m, g, _ := setupPlain(t, 128)
	_ = m
	image, stats, err := Migrate(g.VM, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds < 1 || stats.UniquePages == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Every mapped frame's content must match the live memory.
	mismatch := 0
	for gpa, want := range image {
		got := make([]byte, mem.PageSize)
		if err := g.VM.VCPU().KernelReadGPA(gpa, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Errorf("%d migrated pages differ from live memory", mismatch)
	}
}

// setupPlain is setup without the adapter noise.
func setupPlain(t *testing.T, pages int) (*machine.Machine, *machine.Guest, mem.GVA) {
	t.Helper()
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return m, g, region.Start
}

func TestMigrationCatchesRacingWrites(t *testing.T) {
	m, g, base := setupPlain(t, 64)
	_ = m
	proc, _ := g.Kernel.Process(1)
	marker := uint64(0xA5A5_0000)
	image, stats, err := Migrate(g.VM, Options{MaxRounds: 4}, func(round int) error {
		// Mutate a page during pre-copy; the final image must hold the
		// last value.
		return proc.WriteU64(base, marker+uint64(round))
	})
	if err != nil {
		t.Fatal(err)
	}
	gpa, err := proc.PT.Translate(base)
	if err != nil {
		t.Fatal(err)
	}
	content, ok := image[gpa.PageFloor()]
	if !ok {
		t.Fatal("mutated page missing from image")
	}
	got := uint64(content[0]) | uint64(content[1])<<8 | uint64(content[2])<<16 | uint64(content[3])<<24
	// The last runBetween call was for some round r; the image must hold
	// marker+r for the final r (rounds executed = stats.Rounds varies).
	if got < uint64(uint32(marker+1)) {
		t.Errorf("image holds stale value %#x (stats %+v)", got, stats)
	}
	// The racing page was retransmitted: amplification observable.
	if stats.PagesSent <= stats.UniquePages {
		t.Errorf("no retransmissions recorded: sent=%d unique=%d", stats.PagesSent, stats.UniquePages)
	}
}

func TestMigrationConvergesAndBoundsDowntime(t *testing.T) {
	m, g, _ := setupPlain(t, 256)
	_ = m
	image, stats, err := Migrate(g.VM, Options{DowntimeTargetPages: 32, BandwidthPagesPerMS: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Error("idle guest did not converge")
	}
	// Downtime covers <= 32 pages at 64 pages/ms: at most 0.5ms.
	if stats.Downtime > 500*1000 {
		t.Errorf("downtime %v exceeds the target bound", stats.Downtime)
	}
	if len(image) < 256 {
		t.Errorf("image has %d frames, want >= 256", len(image))
	}
}

func TestMigrationEmptyVM(t *testing.T) {
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Migrate(m.Guest(0).VM, Options{}, nil); !errors.Is(err, ErrNoMemory) {
		t.Errorf("empty VM migration: %v", err)
	}
}

// TestMigrationCoexistsWithSPML is the §IV-C showcase: a guest SPML
// session stays complete while the hypervisor live-migrates the VM.
func TestMigrationCoexistsWithSPML(t *testing.T) {
	m, g, base := setupPlain(t, 64)
	_ = m
	proc, _ := g.Kernel.Process(1)
	tech, err := g.NewTechnique(costmodel.SPML, proc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tech.Init(); err != nil {
		t.Fatal(err)
	}

	written := map[mem.GVA]bool{}
	_, _, err = Migrate(g.VM, Options{MaxRounds: 3}, func(round int) error {
		for i := 0; i < 8; i++ {
			gva := base.Add(uint64(round*8+i) * mem.PageSize)
			if err := proc.WriteU64(gva, uint64(round)); err != nil {
				return err
			}
			written[gva] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tech.Collect()
	if err != nil {
		t.Fatal(err)
	}
	have := map[mem.GVA]bool{}
	for _, gva := range got {
		have[gva] = true
	}
	for gva := range written {
		if !have[gva] {
			t.Errorf("SPML lost page %v during migration", gva)
		}
	}
	if err := tech.Close(); err != nil {
		t.Fatal(err)
	}
}
