package migration

import (
	"fmt"

	"repro/internal/mem"
)

// Phase is one state of the migration state machine. Transitions:
//
//	Init -> FullCopy -> PreCopy -> StopAndCopy -> Completed
//	                     |  ^
//	                     |  '-- Resume(journal) after a round crash
//	                     '----> Aborted (fatal error, SLO abort, or Abort)
type Phase int

const (
	PhaseInit        Phase = iota // journal created, dirty logging not yet armed
	PhaseFullCopy                 // round 0: every mapped frame in flight
	PhasePreCopy                  // dirty-only rounds
	PhaseStopAndCopy              // guest paused, final transfer
	PhaseCompleted                // destination image is complete and verified acked
	PhaseAborted                  // partial image discarded, source still authoritative
)

var phaseNames = [...]string{
	PhaseInit:        "init",
	PhaseFullCopy:    "full-copy",
	PhasePreCopy:     "pre-copy",
	PhaseStopAndCopy: "stop-and-copy",
	PhaseCompleted:   "completed",
	PhaseAborted:     "aborted",
}

// String returns the phase's stable name.
func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Journal is the migration's per-round transaction log: everything needed
// to resume after the transport crashes between pre-copy rounds. The
// source keeps running (and keeps being dirty-logged) across the outage,
// so a Resume sends only the delta instead of restarting the full copy.
type Journal struct {
	// Phase is the state the machine was in when the journal was last
	// written.
	Phase Phase
	// NextRound is the first pre-copy round a Resume will run.
	NextRound int
	// Opts are the options the migration started with; Resume reuses them
	// so a resumed migration is governed by the same SLO.
	Opts Options
	// Stats accumulates across the original run and every resume.
	Stats Stats

	// dest is the destination side: the pages it has acked so far. It is
	// discarded on abort - a partial image must never look restorable.
	dest *dest
	// pending is a converged dirty set carried into stop-and-copy.
	pending []mem.GPA
}

// ImagePages returns how many distinct frames the destination has acked -
// the progress a Resume preserves.
func (j *Journal) ImagePages() int {
	if j == nil || j.dest == nil {
		return 0
	}
	return len(j.dest.image)
}

// CrashError wraps ErrRoundCrash and carries the journal a Resume needs.
// Callers extract it with errors.As and either Resume or Abort:
//
//	var ce *migration.CrashError
//	if errors.As(err, &ce) {
//	    image, stats, err = migration.Resume(vm, ce.Journal, runBetween)
//	}
type CrashError struct {
	Journal *Journal
	// Round is the pre-copy round the transport died in front of.
	Round int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("migration: transport crashed before round %d (%d frames journaled)",
		e.Round, e.Journal.ImagePages())
}

// Unwrap classifies every crash as ErrRoundCrash for errors.Is.
func (e *CrashError) Unwrap() error { return ErrRoundCrash }

// dest models the destination host: it verifies every page against the
// sender's checksum before acking it, so a payload corrupted on the wire
// is NACKed (and resent) instead of silently landing in the image.
type dest struct {
	image map[mem.GPA][]byte
}

func newDest() *dest { return &dest{image: make(map[mem.GPA][]byte)} }

// receive acks one page: false means the checksum did not match and the
// page was discarded (NACK).
func (d *dest) receive(gpa mem.GPA, payload []byte, sum uint64) bool {
	if checksum(payload) != sum {
		return false
	}
	d.image[gpa] = payload
	return true
}

// checksum is the per-page FNV-1a the destination verifies transfers with.
func checksum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
