package migration

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sim"
)

// setupProfiled is setupPlain with a profiler attached to the machine.
func setupProfiled(t *testing.T, pages int) (*prof.Profiler, *machine.Guest, mem.GVA) {
	t.Helper()
	p := prof.New()
	m, err := machine.New(machine.Config{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	for i := 0; i < pages; i++ {
		if err := proc.WriteU64(region.Start.Add(uint64(i)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return p, g, region.Start
}

// TestMigrationStopAndCopySpanEqualsDowntime is the profiler's exactness
// cross-check against the migration stats plane: the stop_and_copy span
// opens at the same virtual instant as the downtime stopwatch and closes
// at the instant it is read, so its inclusive time must equal
// Stats.Downtime to the nanosecond.
func TestMigrationStopAndCopySpanEqualsDowntime(t *testing.T) {
	p, g, base := setupProfiled(t, 128)
	proc, _ := g.Kernel.Process(1)
	_, stats, err := Migrate(g.VM, Options{MaxRounds: 3}, func(round int) error {
		return proc.WriteU64(base, uint64(round))
	})
	if err != nil {
		t.Fatal(err)
	}
	var sac *prof.PathStat
	for _, ps := range p.Paths() {
		ps := ps
		if len(ps.Path) == 2 &&
			ps.Path[0] == (prof.Frame{Sub: prof.SubMigration, Op: "migrate"}) &&
			ps.Path[1].Op == "stop_and_copy" {
			sac = &ps
		}
	}
	if sac == nil {
		t.Fatal("no migration/migrate;migration/stop_and_copy path in the profile")
	}
	if want := stats.Downtime.Nanoseconds(); sac.Incl != want {
		t.Errorf("stop_and_copy span = %dns, want Stats.Downtime %dns", sac.Incl, want)
	}
	if sac.Count != 1 {
		t.Errorf("stop_and_copy count = %d, want 1", sac.Count)
	}
}

// TestMigrationCriticalPath asserts CriticalPath names a dominant path for
// the migration rounds, including the full-copy round 0.
func TestMigrationCriticalPath(t *testing.T) {
	p, g, _ := setupProfiled(t, 128)
	_, stats, err := Migrate(g.VM, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []prof.RoundPath
	for _, r := range p.CriticalPath() {
		if r.Sub == prof.SubMigration {
			rounds = append(rounds, r)
		}
	}
	if len(rounds) == 0 {
		t.Fatal("CriticalPath has no migration rounds")
	}
	if rounds[0].Round != 0 {
		t.Errorf("first migration round is %d, want the full-copy round 0", rounds[0].Round)
	}
	if rounds[0].Total <= 0 {
		t.Errorf("round 0 total = %d, want > 0 (it copied %d pages)",
			rounds[0].Total, stats.PerRoundPages[0])
	}
	for i, r := range rounds {
		if r.Round != i {
			t.Errorf("migration rounds out of order: position %d holds round %d", i, r.Round)
		}
		if r.Dominant() == "" {
			t.Errorf("round %d has no dominant path", r.Round)
		}
	}
}
