// Package migration implements pre-copy live migration of a whole VM,
// driven by the hypervisor-level dirty log - the feature's original
// purpose (§II-B: "the content of the larger buffer is used to know which
// pages should be resent during the VM live migration pre-copy phase").
//
// The pipeline is transactional: an explicit round state machine writes a
// per-round Journal, page sends survive transient transport faults with
// bounded clock-charged retries, wire corruption is caught by a per-page
// checksum at the destination (NACK and resend), a downtime-SLO guard
// refuses stop-and-copy when the pending set cannot be transferred within
// Options.DowntimeBudget, aborts discard the partial destination image and
// leave the source guest runnable, and Resume re-attaches after a
// transport crash between rounds and sends only the delta.
//
// It exists in this reproduction for two reasons: it exercises the
// hypervisor's own use of PML end to end, and it demonstrates (with tests)
// that a guest's SPML session keeps working while its VM is being
// live-migrated - the coordination §IV-C was designed for.
//
// The migration drives any hv backend: it programs against
// hv.VirtualMachine and harvests through the hv.DirtyLog capability
// (discovered by type assertion, like a KVM_CAP probe). The conformance
// suite runs it under every registered backend.
package migration

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/hv"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tunes the pre-copy loop.
type Options struct {
	// BandwidthPagesPerMS is the transfer rate toward the destination in
	// 4 KiB pages per virtual millisecond (default 256 ~= 1 GB/s).
	BandwidthPagesPerMS int
	// MaxRounds bounds the dirty-only rounds before stop-and-copy.
	MaxRounds int
	// DowntimeTargetPages: switch to stop-and-copy once a round's dirty
	// set is at most this many pages.
	DowntimeTargetPages int
	// DowntimeBudget, when non-zero, is the downtime SLO: stop-and-copy is
	// refused while the pending set's estimated transfer time exceeds it
	// (pre-copy continues instead), and once MaxRounds are exhausted the
	// migration aborts with ErrSLOAbort rather than blow the budget.
	DowntimeBudget time.Duration
	// MaxSendRetries bounds, per page, the transient send failures retried
	// and the checksum NACKs resent before the migration aborts
	// (default 4).
	MaxSendRetries int
	// SendBackoff is the virtual-time wait before the first send retry; it
	// doubles per attempt (default 30us).
	SendBackoff time.Duration
	// DestStallTime is the extra virtual time one injected destination
	// stall charges (default 150us).
	DestStallTime time.Duration
}

func (o Options) withDefaults() Options {
	if o.BandwidthPagesPerMS <= 0 {
		o.BandwidthPagesPerMS = 256
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.DowntimeTargetPages <= 0 {
		o.DowntimeTargetPages = 32
	}
	if o.MaxSendRetries <= 0 {
		o.MaxSendRetries = 4
	}
	if o.SendBackoff <= 0 {
		o.SendBackoff = 30 * time.Microsecond
	}
	if o.DestStallTime <= 0 {
		o.DestStallTime = 150 * time.Microsecond
	}
	return o
}

// Stats reports one migration (accumulated across resumes).
type Stats struct {
	Rounds        int
	PagesSent     int // total page transfers (pre-copy amplification)
	UniquePages   int
	TotalTime     time.Duration
	Downtime      time.Duration // the stop-and-copy window
	Converged     bool          // reached the downtime target before MaxRounds
	PerRoundPages []int
	// Transport recovery, accumulated across retries and resumes.
	Retries int  // transient send failures retried (clock-charged backoff)
	Resends int  // checksum NACKs answered with a resend
	Stalls  int  // destination stalls absorbed (extra charged time)
	Resumes int  // journal re-attachments after a round crash
	Aborted bool // the partial destination image was discarded
}

// Typed failures of the transactional pipeline.
var (
	// ErrNoMemory reports a migration attempt on a VM with no mapped memory.
	ErrNoMemory = errors.New("migration: VM has no mapped guest memory")
	// ErrNoDirtyLog reports a VM whose backend does not expose the
	// hv.DirtyLog capability pre-copy depends on.
	ErrNoDirtyLog = errors.New("migration: backend VM exposes no dirty log")
	// ErrSLOAbort reports a migration that could not reach a pending set
	// transferable within Options.DowntimeBudget: rather than violate the
	// SLO, the migration aborted and the source keeps running.
	ErrSLOAbort = errors.New("migration: downtime SLO unattainable")
	// ErrRoundCrash reports a transport crash between pre-copy rounds; the
	// wrapping CrashError carries the Journal a Resume needs.
	ErrRoundCrash = errors.New("migration: transport crashed between rounds")
	// ErrSendFailed reports a page whose send failed past MaxSendRetries
	// (transient failures and checksum NACKs both count).
	ErrSendFailed = errors.New("migration: page send failed after retries")
)

// Migration drives one VM's pre-copy migration through the round state
// machine. Use New+Run (or the Migrate convenience wrapper); after a
// round crash, Resume continues from the journal.
type Migration struct {
	vm      hv.VirtualMachine
	log     hv.DirtyLog // nil when the backend lacks the capability
	cpu     hv.VirtualCPU
	j       *Journal
	perPage time.Duration
}

// New prepares a migration of vm (nothing is armed until Run).
func New(vm hv.VirtualMachine, opts Options) *Migration {
	opts = opts.withDefaults()
	m := &Migration{
		vm:      vm,
		cpu:     vm.VCPU(),
		j:       &Journal{Phase: PhaseInit, NextRound: 1, Opts: opts, dest: newDest()},
		perPage: time.Millisecond / time.Duration(opts.BandwidthPagesPerMS),
	}
	m.log, _ = vm.(hv.DirtyLog)
	return m
}

// Journal returns the migration's transaction log. After a round crash it
// is what Resume re-attaches to; after completion or abort it records the
// terminal phase.
func (m *Migration) Journal() *Journal { return m.j }

// Migrate pre-copies vm's guest-physical memory into a destination page
// store while runBetween keeps the guest running between rounds; the final
// round is a stop-and-copy (runBetween is not called after it). The
// returned image maps GPA page bases to page contents at the moment of
// completion. On a transport round-crash the error wraps ErrRoundCrash and
// a CrashError carrying the journal for Resume.
func Migrate(vm hv.VirtualMachine, opts Options, runBetween func(round int) error) (map[mem.GPA][]byte, Stats, error) {
	return New(vm, opts).Run(runBetween)
}

// Run executes the migration from the beginning: full copy, pre-copy
// rounds, stop-and-copy.
func (m *Migration) Run(runBetween func(round int) error) (map[mem.GPA][]byte, Stats, error) {
	vm, j := m.vm, m.j
	if m.log == nil {
		return nil, j.Stats, ErrNoDirtyLog
	}
	total := sim.StartWatch(vm.Clock())
	tap := m.cpu.Profiler()
	migSp := tap.Begin(prof.SubMigration, "migrate")
	defer migSp.End()

	// Arm hypervisor-level dirty logging before the first full copy so
	// writes racing the copy are caught by the next round. It stays armed
	// across a round crash (the outage's writes are the resume delta) and
	// is disarmed only on completion or abort.
	m.log.StartDirtyLogging()

	// Round 0: full copy of every mapped guest frame (sorted by contract).
	all := vm.MappedPages()
	if len(all) == 0 {
		m.abort(0)
		j.Stats.TotalTime += total.Elapsed()
		return nil, j.Stats, ErrNoMemory
	}
	j.Phase = PhaseFullCopy
	r0Sp := tap.Begin(prof.SubMigration, prof.RoundOp(0))
	err := m.sendRound(all)
	r0Sp.End()
	if err != nil {
		m.abort(0)
		j.Stats.TotalTime += total.Elapsed()
		return nil, j.Stats, err
	}
	j.NextRound = 1
	return m.converge(total, runBetween)
}

// Resume re-attaches to a migration whose transport crashed between
// pre-copy rounds. Dirty logging stayed armed across the outage, so only
// the journaled pending work plus the pages dirtied since the crash are
// sent - not the full memory again.
func Resume(vm hv.VirtualMachine, j *Journal, runBetween func(round int) error) (map[mem.GPA][]byte, Stats, error) {
	if j == nil {
		return nil, Stats{}, errors.New("migration: nil journal")
	}
	if j.dest == nil || j.Phase != PhasePreCopy {
		return nil, j.Stats, fmt.Errorf("migration: journal not resumable (phase %v)", j.Phase)
	}
	m := &Migration{vm: vm, cpu: vm.VCPU(), j: j,
		perPage: time.Millisecond / time.Duration(j.Opts.BandwidthPagesPerMS)}
	m.log, _ = vm.(hv.DirtyLog)
	if m.log == nil {
		return nil, j.Stats, ErrNoDirtyLog
	}
	total := sim.StartWatch(vm.Clock())
	tap := m.cpu.Profiler()
	migSp := tap.Begin(prof.SubMigration, "migrate")
	defer migSp.End()

	j.Stats.Resumes++
	v := m.cpu
	now := vm.Clock().Nanos()
	if tr := v.Tracer(); tr.Enabled(trace.KindMigResume) {
		tr.Emit(trace.Record{Kind: trace.KindMigResume, VM: int32(v.ID()), TS: now,
			Arg: int64(j.NextRound)})
	}
	v.Metrics().Observe(trace.KindMigResume, now, 0, int64(j.NextRound))
	v.Metrics().Count(metrics.SubMigration, "resumes_total", "", 1)
	return m.converge(total, runBetween)
}

// Abort abandons a crashed (or still-journaled) migration instead of
// resuming it: dirty logging is stopped, the partial destination image is
// discarded, and the source guest - never paused - remains authoritative.
func Abort(vm hv.VirtualMachine, j *Journal) {
	if j == nil || j.Phase == PhaseAborted || j.Phase == PhaseCompleted {
		return
	}
	m := &Migration{vm: vm, cpu: vm.VCPU(), j: j}
	m.log, _ = vm.(hv.DirtyLog)
	m.abort(j.NextRound)
}

// converge is the shared tail of Run and Resume: pre-copy rounds under the
// SLO guard, then stop-and-copy.
func (m *Migration) converge(total sim.Stopwatch, runBetween func(round int) error) (map[mem.GPA][]byte, Stats, error) {
	vm, j, v := m.vm, m.j, m.cpu
	opts := j.Opts
	tap := v.Profiler()
	j.Phase = PhasePreCopy

	fail := func(round int, err error) (map[mem.GPA][]byte, Stats, error) {
		m.abort(round)
		j.Stats.TotalTime += total.Elapsed()
		return nil, j.Stats, err
	}

	// Dirty-only rounds. On convergence the freshly collected (small)
	// dirty set is carried into the stop-and-copy transfer - dropping it
	// would ship stale pages. lastDirty is the standard pre-copy downtime
	// estimator: the most recently observed dirty-set size.
	lastDirty := -1
	for round := j.NextRound; ; round++ {
		if round > opts.MaxRounds {
			if opts.DowntimeBudget > 0 && lastDirty >= 0 &&
				m.estimatedDowntime(lastDirty) > opts.DowntimeBudget {
				return fail(round, fmt.Errorf(
					"migration: pending ~%d pages need %v, budget %v: %w",
					lastDirty, m.estimatedDowntime(lastDirty), opts.DowntimeBudget, ErrSLOAbort))
			}
			break // budget satisfiable (or no SLO): pause and finish
		}
		if runBetween != nil {
			if err := runBetween(round); err != nil {
				return fail(round, fmt.Errorf("migration: guest (round %d): %w", round, err))
			}
		}
		// The transport session can die between rounds. The journal stays
		// valid, dirty logging stays armed, and the caller decides between
		// Resume (send the delta) and Abort.
		if v.Injector().Fire(faults.RoundCrash) {
			v.FaultRecord(faults.RoundCrash, 0)
			j.NextRound = round
			j.Stats.TotalTime += total.Elapsed()
			return nil, j.Stats, &CrashError{Journal: j, Round: round}
		}
		rSp := tap.Begin(prof.SubMigration, prof.RoundOp(round))
		dirty, err := m.collectDirty()
		if err != nil {
			rSp.End()
			return fail(round, err)
		}
		// Feed the round boundary to the online monitor: dirty-set size,
		// convergence target and SLO terms. Its predictor extrapolates the
		// series and can flag non-convergence rounds before the guard above
		// would trip ErrSLOAbort.
		v.Monitor().Round(int32(v.ID()), monitor.SubMigration, round,
			len(dirty), opts.DowntimeTargetPages, opts.MaxRounds,
			int64(m.estimatedDowntime(len(dirty))), int64(opts.DowntimeBudget),
			vm.Clock().Nanos())
		if len(dirty) <= opts.DowntimeTargetPages &&
			(opts.DowntimeBudget <= 0 || m.estimatedDowntime(len(dirty)) <= opts.DowntimeBudget) {
			j.Stats.Converged = true
			j.pending = dirty
			rSp.End()
			j.NextRound = round + 1
			break
		}
		err = m.sendRound(dirty)
		rSp.End()
		if err != nil {
			return fail(round, err)
		}
		lastDirty = len(dirty)
		j.NextRound = round + 1
	}

	// Stop-and-copy: the guest is paused (no runBetween), transfer the
	// pending set plus anything dirtied since it was collected - dedup'd,
	// so a page in both sets is shipped (and charged) once. The transfer
	// time is the migration downtime.
	j.Phase = PhaseStopAndCopy
	down := sim.StartWatch(vm.Clock())
	sacSp := tap.Begin(prof.SubMigration, "stop_and_copy")
	last, err := m.collectDirty()
	if err != nil {
		sacSp.End()
		return fail(j.NextRound, err)
	}
	err = m.sendRound(dedup(j.pending, last))
	sacSp.End()
	if err != nil {
		return fail(j.NextRound, err)
	}
	j.Stats.Downtime += down.Elapsed()
	j.Stats.TotalTime += total.Elapsed()
	j.Stats.UniquePages = len(j.dest.image)
	j.Phase = PhaseCompleted
	j.pending = nil
	m.log.StopDirtyLogging()
	return j.dest.image, j.Stats, nil
}

// abort is the internal clean-abort transition: dirty logging stopped, the
// partial destination image discarded, the terminal phase journaled. The
// source guest was never paused, so it simply keeps running.
func (m *Migration) abort(round int) {
	j := m.j
	j.Phase = PhaseAborted
	j.Stats.Aborted = true
	j.dest = nil
	j.pending = nil
	if m.log != nil {
		m.log.StopDirtyLogging()
	}
	v := m.cpu
	now := m.vm.Clock().Nanos()
	if tr := v.Tracer(); tr.Enabled(trace.KindMigAbort) {
		tr.Emit(trace.Record{Kind: trace.KindMigAbort, VM: int32(v.ID()), TS: now,
			Arg: int64(round)})
	}
	v.Metrics().Observe(trace.KindMigAbort, now, 0, int64(round))
	v.Metrics().Count(metrics.SubMigration, "aborts_total", "", 1)
}

// estimatedDowntime is the stop-and-copy estimate for n pending pages.
func (m *Migration) estimatedDowntime(n int) time.Duration {
	return time.Duration(n) * m.perPage
}

// collectDirty drains one pre-copy round's dirty log under a span. The
// result arrives sorted from CollectDirty (the send order decides which
// page each per-point fault draw lands on, so ordering is what keeps
// faulted runs and their traces deterministic).
func (m *Migration) collectDirty() ([]mem.GPA, error) {
	sp := m.cpu.Profiler().Begin(prof.SubMigration, "collect")
	defer sp.End()
	return m.log.CollectDirty()
}

// dedup unions two page sets in first-seen order, page-floored: the
// stop-and-copy transfer must ship (and charge) each frame exactly once.
func dedup(a, b []mem.GPA) []mem.GPA {
	out := make([]mem.GPA, 0, len(a)+len(b))
	seen := make(map[mem.GPA]struct{}, len(a)+len(b))
	for _, set := range [2][]mem.GPA{a, b} {
		for _, gpa := range set {
			gpa = gpa.PageFloor()
			if _, dup := seen[gpa]; dup {
				continue
			}
			seen[gpa] = struct{}{}
			out = append(out, gpa)
		}
	}
	return out
}

// sendRound transfers one round's frames into the destination image,
// charging transfer time per attempt.
func (m *Migration) sendRound(pages []mem.GPA) error {
	sp := m.cpu.Profiler().Begin(prof.SubMigration, "send")
	defer sp.End()
	for _, gpa := range pages {
		if err := m.sendPage(gpa.PageFloor()); err != nil {
			return err
		}
	}
	j := m.j
	j.Stats.Rounds++
	j.Stats.PerRoundPages = append(j.Stats.PerRoundPages, len(pages))
	return nil
}

// sendPage transfers one frame: bounded clock-charged retry on transient
// send failures, checksum verification at the destination with NACK and
// resend on wire corruption, and extra charged time on destination stalls.
func (m *Migration) sendPage(gpa mem.GPA) error {
	vm, v := m.vm, m.cpu
	opts := m.j.Opts
	buf := make([]byte, mem.PageSize)
	if err := v.KernelReadGPA(gpa, buf); err != nil {
		return fmt.Errorf("migration: reading %v: %w", gpa, err)
	}
	backoff := opts.SendBackoff
	for attempt := 1; ; attempt++ {
		// The send can fail before the page reaches the wire (transient
		// transport failure): retry after a charged backoff.
		if v.Injector().Fire(faults.SendFail) {
			v.FaultRecord(faults.SendFail, uint64(gpa))
			if attempt > opts.MaxSendRetries {
				return fmt.Errorf("migration: sending %v after %d attempts: %w",
					gpa, attempt, ErrSendFailed)
			}
			m.j.Stats.Retries++
			now := vm.Clock().Nanos()
			if tr := v.Tracer(); tr.Enabled(trace.KindMigRetry) {
				tr.Emit(trace.Record{Kind: trace.KindMigRetry, VM: int32(v.ID()), TS: now,
					Cost: int64(backoff), Addr: uint64(gpa), Arg: int64(attempt)})
			}
			v.Metrics().Observe(trace.KindMigRetry, now, int64(backoff), int64(attempt))
			v.Metrics().Count(metrics.SubMigration, "retries_total", "", 1)
			vm.Clock().Advance(backoff)
			backoff *= 2
			continue
		}
		// The page is on the wire: charge the transfer.
		vm.Clock().Advance(m.perPage)
		payload, sum := m.transmit(gpa, buf)
		if v.Injector().Fire(faults.DestStall) {
			v.FaultRecord(faults.DestStall, uint64(gpa))
			m.j.Stats.Stalls++
			vm.Clock().Advance(opts.DestStallTime)
		}
		if !m.j.dest.receive(gpa, payload, sum) {
			// Checksum mismatch at the destination: NACK, resend. Each
			// resend is a fresh wire transfer (charged above on the next
			// attempt) and counts against the per-page attempt bound.
			if attempt > opts.MaxSendRetries {
				return fmt.Errorf("migration: %v corrupted on %d consecutive transfers: %w",
					gpa, attempt, ErrSendFailed)
			}
			m.j.Stats.Resends++
			now := vm.Clock().Nanos()
			if tr := v.Tracer(); tr.Enabled(trace.KindMigNack) {
				tr.Emit(trace.Record{Kind: trace.KindMigNack, VM: int32(v.ID()), TS: now,
					Addr: uint64(gpa), Arg: int64(attempt)})
			}
			v.Metrics().Observe(trace.KindMigNack, now, 0, int64(attempt))
			v.Metrics().Count(metrics.SubMigration, "resends_total", "", 1)
			continue
		}
		m.j.Stats.PagesSent++
		return nil
	}
}

// transmit models the wire: the page is copied for flight and checksummed
// on the sender side; an injected WireCorrupt flips one payload byte after
// the checksum was taken - exactly the damage the destination's
// verification catches.
func (m *Migration) transmit(gpa mem.GPA, buf []byte) (payload []byte, sum uint64) {
	payload = make([]byte, len(buf))
	copy(payload, buf)
	sum = checksum(payload)
	if v := m.cpu; v.Injector().Fire(faults.WireCorrupt) {
		v.FaultRecord(faults.WireCorrupt, uint64(gpa))
		payload[sum%uint64(len(payload))] ^= 0xFF
	}
	return payload, sum
}
