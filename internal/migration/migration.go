// Package migration implements pre-copy live migration of a whole VM,
// driven by the hypervisor-level PML dirty log - the feature's original
// purpose (§II-B: "the content of the larger buffer is used to know which
// pages should be resent during the VM live migration pre-copy phase").
//
// It exists in this reproduction for two reasons: it exercises the
// hypervisor's own use of PML end to end, and it demonstrates (with tests)
// that a guest's SPML session keeps working while its VM is being
// live-migrated - the coordination §IV-C was designed for.
package migration

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ept"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sim"
)

// Options tunes the pre-copy loop.
type Options struct {
	// BandwidthPagesPerMS is the transfer rate toward the destination in
	// 4 KiB pages per virtual millisecond (default 256 ~= 1 GB/s).
	BandwidthPagesPerMS int
	// MaxRounds bounds the dirty-only rounds before stop-and-copy.
	MaxRounds int
	// DowntimeTargetPages: switch to stop-and-copy once a round's dirty
	// set is at most this many pages.
	DowntimeTargetPages int
}

func (o Options) withDefaults() Options {
	if o.BandwidthPagesPerMS <= 0 {
		o.BandwidthPagesPerMS = 256
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.DowntimeTargetPages <= 0 {
		o.DowntimeTargetPages = 32
	}
	return o
}

// Stats reports one migration.
type Stats struct {
	Rounds        int
	PagesSent     int // total page transfers (pre-copy amplification)
	UniquePages   int
	TotalTime     time.Duration
	Downtime      time.Duration // the stop-and-copy window
	Converged     bool          // reached the downtime target before MaxRounds
	PerRoundPages []int
}

// ErrNoMemory reports a migration attempt on a VM with no mapped memory.
var ErrNoMemory = errors.New("migration: VM has no mapped guest memory")

// Migrate pre-copies vm's guest-physical memory into a destination page
// store while runBetween keeps the guest running between rounds; the final
// round is a stop-and-copy (runBetween is not called after it). The
// returned image maps GPA page bases to page contents at the moment of
// completion.
func Migrate(vm *hypervisor.VM, opts Options, runBetween func(round int) error) (map[mem.GPA][]byte, Stats, error) {
	opts = opts.withDefaults()
	stats := Stats{}
	clock := vm.Clock
	total := sim.StartWatch(clock)
	tap := vm.VCPU.Prof
	migSp := tap.Begin(prof.SubMigration, "migrate")
	defer migSp.End()
	image := make(map[mem.GPA][]byte)

	perPage := time.Millisecond / time.Duration(opts.BandwidthPagesPerMS)

	// Arm hypervisor-level dirty logging before the first full copy so
	// writes racing the copy are caught by the next round.
	vm.StartDirtyLogging()
	defer vm.StopDirtyLogging()

	// Round 0: full copy of every mapped guest frame.
	all := mappedGPAs(vm)
	if len(all) == 0 {
		return nil, stats, ErrNoMemory
	}
	r0Sp := tap.Begin(prof.SubMigration, prof.RoundOp(0))
	if err := sendPages(vm, image, all, perPage, &stats); err != nil {
		return nil, stats, err
	}
	r0Sp.End()

	// Dirty-only rounds. On convergence the freshly collected (small)
	// dirty set is carried into the stop-and-copy transfer - dropping it
	// would ship stale pages.
	var pending []mem.GPA
	for round := 1; round <= opts.MaxRounds; round++ {
		if runBetween != nil {
			if err := runBetween(round); err != nil {
				return nil, stats, fmt.Errorf("migration: guest (round %d): %w", round, err)
			}
		}
		rSp := tap.Begin(prof.SubMigration, prof.RoundOp(round))
		dirty, err := collectDirty(vm)
		if err != nil {
			return nil, stats, err
		}
		if len(dirty) <= opts.DowntimeTargetPages {
			stats.Converged = true
			pending = dirty
			rSp.End()
			break
		}
		if err := sendPages(vm, image, dirty, perPage, &stats); err != nil {
			return nil, stats, err
		}
		rSp.End()
	}

	// Stop-and-copy: the guest is paused (no runBetween), transfer the
	// pending set plus anything dirtied since it was collected. The
	// transfer time is the migration downtime.
	down := sim.StartWatch(clock)
	sacSp := tap.Begin(prof.SubMigration, "stop_and_copy")
	last, err := collectDirty(vm)
	if err != nil {
		return nil, stats, err
	}
	if err := sendPages(vm, image, append(pending, last...), perPage, &stats); err != nil {
		return nil, stats, err
	}
	sacSp.End()
	stats.Downtime = down.Elapsed()
	stats.TotalTime = total.Elapsed()
	stats.UniquePages = len(image)
	return image, stats, nil
}

// collectDirty drains one pre-copy round's dirty log under a span.
func collectDirty(vm *hypervisor.VM) ([]mem.GPA, error) {
	sp := vm.VCPU.Prof.Begin(prof.SubMigration, "collect")
	defer sp.End()
	return vm.CollectDirty()
}

// mappedGPAs enumerates the VM's mapped guest frames.
func mappedGPAs(vm *hypervisor.VM) []mem.GPA {
	out := make([]mem.GPA, 0, vm.EPT.Mapped())
	vm.EPT.Range(func(gpa mem.GPA, e ept.Entry) bool {
		out = append(out, gpa)
		return true
	})
	return out
}

// sendPages copies the given frames into the image, charging transfer time.
func sendPages(vm *hypervisor.VM, image map[mem.GPA][]byte, pages []mem.GPA, perPage time.Duration, stats *Stats) error {
	sp := vm.VCPU.Prof.Begin(prof.SubMigration, "send")
	defer sp.End()
	for _, gpa := range pages {
		buf := make([]byte, mem.PageSize)
		if err := vm.VCPU.KernelReadGPA(gpa.PageFloor(), buf); err != nil {
			return fmt.Errorf("migration: reading %v: %w", gpa, err)
		}
		image[gpa.PageFloor()] = buf
		vm.Clock.Advance(perPage)
		stats.PagesSent++
	}
	stats.Rounds++
	stats.PerRoundPages = append(stats.PerRoundPages, len(pages))
	return nil
}
