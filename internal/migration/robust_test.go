package migration

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sim"
)

// setupFaulted is setupPlain with a fault injector armed on the machine.
func setupFaulted(t *testing.T, pages int, spec string, seed uint64) (*machine.Guest, mem.GVA, *faults.Injector) {
	t.Helper()
	parsed, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(parsed, seed)
	m, err := machine.New(machine.Config{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return g, region.Start, inj
}

// verifyImageExact asserts the destination image matches the source VM's
// live memory frame for frame - the oracle-exactness acceptance property.
func verifyImageExact(t *testing.T, g *machine.Guest, image map[mem.GPA][]byte) {
	t.Helper()
	if len(image) == 0 {
		t.Fatal("empty destination image")
	}
	for gpa, want := range image {
		got := make([]byte, mem.PageSize)
		if err := g.VM.VCPU().KernelReadGPA(gpa, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("migrated page %v differs from live memory", gpa)
		}
	}
}

// verifySourceRunnable asserts the source guest survived a failed (or
// crashed) migration: dirty logging is off, and the guest can still write
// its memory.
func verifySourceRunnable(t *testing.T, g *machine.Guest, base mem.GVA) {
	t.Helper()
	if g.SimVM().EnabledByHyp() {
		t.Error("hypervisor dirty logging still armed after abort")
	}
	proc, _ := g.Kernel.Process(1)
	if err := proc.WriteU64(base, 0xDEAD_BEEF); err != nil {
		t.Errorf("source guest not runnable after abort: %v", err)
	}
}

func TestMigrationSendRetryRecovers(t *testing.T) {
	g, _, _ := setupFaulted(t, 96, "send-fail:0.3", 9)
	image, stats, err := Migrate(g.VM, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Error("a 30% transient send-failure rate fired no retries")
	}
	verifyImageExact(t, g, image)
}

func TestMigrationWireCorruptionCaughtAndResent(t *testing.T) {
	g, _, _ := setupFaulted(t, 96, "wire-corrupt:0.3", 9)
	// A 0.3 corruption rate makes 5 consecutive NACKs on one page likely
	// somewhere in 96 pages; a wider retry bound keeps the run completing.
	image, stats, err := Migrate(g.VM, Options{MaxSendRetries: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resends == 0 {
		t.Error("a 30% wire-corruption rate produced no checksum NACKs")
	}
	// The acceptance property: no corrupted payload ever lands in the
	// image - every acked frame equals the source.
	verifyImageExact(t, g, image)
}

func TestMigrationDestStallCharged(t *testing.T) {
	g, _, _ := setupFaulted(t, 32, "dest-stall", 1)
	_, stats, err := Migrate(g.VM, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stalls != stats.PagesSent {
		t.Errorf("rate-1 dest-stall: %d stalls for %d sends", stats.Stalls, stats.PagesSent)
	}
	// Every stall charges extra virtual time on top of the wire transfer.
	minimum := time.Duration(stats.PagesSent) * (time.Millisecond/256 + 150*time.Microsecond)
	if stats.TotalTime < minimum {
		t.Errorf("stalls not charged: total %v < %v", stats.TotalTime, minimum)
	}
}

func TestMigrationSendExhaustionAbortsCleanly(t *testing.T) {
	g, base, _ := setupFaulted(t, 64, "send-fail", 1)
	image, stats, err := Migrate(g.VM, Options{}, nil)
	if !errors.Is(err, ErrSendFailed) {
		t.Fatalf("rate-1 send-fail: err = %v, want ErrSendFailed", err)
	}
	if image != nil {
		t.Error("aborted migration returned a partial image")
	}
	if !stats.Aborted {
		t.Error("Stats.Aborted not set")
	}
	verifySourceRunnable(t, g, base)
}

func TestMigrationPersistentCorruptionAborts(t *testing.T) {
	g, base, _ := setupFaulted(t, 16, "wire-corrupt", 1)
	_, stats, err := Migrate(g.VM, Options{}, nil)
	if !errors.Is(err, ErrSendFailed) {
		t.Fatalf("rate-1 wire-corrupt: err = %v, want ErrSendFailed", err)
	}
	if stats.Resends == 0 {
		t.Error("no resends before giving up")
	}
	verifySourceRunnable(t, g, base)
}

func TestMigrationRunBetweenErrorAbortsCleanly(t *testing.T) {
	g, base, _ := setupFaulted(t, 64, "", 1)
	boom := errors.New("guest exploded")
	_, stats, err := Migrate(g.VM, Options{}, func(round int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped runBetween error", err)
	}
	if !stats.Aborted {
		t.Error("Stats.Aborted not set on runBetween failure")
	}
	verifySourceRunnable(t, g, base)
}

// TestMigrationRoundCrashResumeSendsOnlyDelta is the transactional
// property: after a transport crash between rounds, Resume re-attaches to
// the journal and ships only the pages dirtied since, not the full memory
// again.
func TestMigrationRoundCrashResumeSendsOnlyDelta(t *testing.T) {
	const pages = 128
	g, base, _ := setupFaulted(t, pages, "round-crash", 1)
	proc, _ := g.Kernel.Process(1)

	writes := 0
	runBetween := func(round int) error {
		for i := 0; i < 4; i++ {
			if err := proc.WriteU64(base.Add(uint64((writes+i)%pages)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		writes += 4
		return nil
	}

	_, _, err := Migrate(g.VM, Options{MaxRounds: 3}, runBetween)
	var ce *CrashError
	if !errors.As(err, &ce) || !errors.Is(err, ErrRoundCrash) {
		t.Fatalf("rate-1 round-crash: err = %v, want CrashError", err)
	}
	if ce.Journal.ImagePages() != pages {
		t.Fatalf("journal preserved %d frames, want the full-copy %d", ce.Journal.ImagePages(), pages)
	}
	if g.SimVM().EnabledByHyp() != true {
		t.Fatal("dirty logging disarmed by a crash - the resume delta would be lost")
	}
	sentBeforeCrash := ce.Journal.Stats.PagesSent

	// The guest keeps running during the outage; its writes are the delta.
	for i := 0; i < 8; i++ {
		if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), 0xC0FFEE+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// The transport comes back: disarm the crash fault and resume.
	g.SimVM().VCPU.Inj = nil
	image, stats, err := Resume(g.VM, ce.Journal, runBetween)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if stats.Resumes != 1 {
		t.Errorf("Stats.Resumes = %d, want 1", stats.Resumes)
	}
	delta := stats.PagesSent - sentBeforeCrash
	if delta <= 0 || delta >= pages {
		t.Errorf("resume sent %d pages; a delta resume must send fewer than the %d a full restart would", delta, pages)
	}
	if len(image) != pages {
		t.Errorf("final image has %d frames, want %d", len(image), pages)
	}
	verifyImageExact(t, g, image)
}

// TestMigrationAbortDeclinesResume: a caller may abandon a crashed
// migration instead of resuming; the abort must leave the source runnable
// and the journal terminally aborted.
func TestMigrationAbortDeclinesResume(t *testing.T) {
	g, base, _ := setupFaulted(t, 64, "round-crash", 1)
	_, _, err := Migrate(g.VM, Options{}, nil)
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CrashError", err)
	}
	Abort(g.VM, ce.Journal)
	if ce.Journal.Phase != PhaseAborted {
		t.Errorf("journal phase = %v, want aborted", ce.Journal.Phase)
	}
	if !ce.Journal.Stats.Aborted {
		t.Error("Stats.Aborted not set by Abort")
	}
	if ce.Journal.ImagePages() != 0 {
		t.Error("partial destination image not discarded by Abort")
	}
	verifySourceRunnable(t, g, base)
	// Resuming an aborted journal must refuse, not corrupt.
	if _, _, err := Resume(g.VM, ce.Journal, nil); err == nil {
		t.Error("Resume accepted an aborted journal")
	}
}

// TestMigrationSLOAbort: a workload dirtying faster than the budget allows
// must end in a typed SLO abort with the source untouched, never in a
// budget-blowing stop-and-copy.
func TestMigrationSLOAbort(t *testing.T) {
	g, base, _ := setupFaulted(t, 256, "", 1)
	proc, _ := g.Kernel.Process(1)
	_, stats, err := Migrate(g.VM, Options{
		MaxRounds:           3,
		BandwidthPagesPerMS: 1, // 1 ms per page
		DowntimeTargetPages: 64,
		DowntimeBudget:      5 * time.Millisecond, // at most ~5 pending pages
	}, func(round int) error {
		for i := 0; i < 48; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrSLOAbort) {
		t.Fatalf("err = %v, want ErrSLOAbort", err)
	}
	if !stats.Aborted || stats.Converged {
		t.Errorf("stats = %+v: want aborted, not converged", stats)
	}
	if stats.Downtime != 0 {
		t.Errorf("SLO abort still charged %v downtime - stop-and-copy must have been refused", stats.Downtime)
	}
	verifySourceRunnable(t, g, base)
}

// TestMigrationSLOGuardExtendsPreCopy: a dirty set under the page target
// but over the time budget keeps pre-copying until the budget is reachable
// instead of pausing the guest too early.
func TestMigrationSLOGuardExtendsPreCopy(t *testing.T) {
	g, base, _ := setupFaulted(t, 128, "", 1)
	proc, _ := g.Kernel.Process(1)
	budget := 4 * time.Millisecond // at 1 page/ms: at most 4 pending pages
	_, stats, err := Migrate(g.VM, Options{
		MaxRounds:           6,
		BandwidthPagesPerMS: 1,
		DowntimeTargetPages: 32,
		DowntimeBudget:      budget,
	}, func(round int) error {
		// The write set shrinks each round: 16, 8, 4, 2... - under the
		// 32-page target from round 1, but within budget only from the
		// round collecting <= 4 pages.
		n := 16 >> uint(round-1)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatal("budget-guarded migration did not converge")
	}
	if stats.Downtime > budget {
		t.Errorf("downtime %v exceeds the %v budget the guard promised", stats.Downtime, budget)
	}
	if stats.Rounds <= 2 {
		t.Errorf("guard did not extend pre-copy: only %d rounds", stats.Rounds)
	}
}

func TestDedupStopAndCopySet(t *testing.T) {
	p := func(n uint64) mem.GPA { return mem.GPA(n * mem.PageSize) }
	got := dedup(
		[]mem.GPA{p(3), p(1), p(3) + 8},
		[]mem.GPA{p(1) + 16, p(2), p(3)},
	)
	want := []mem.GPA{p(3), p(1), p(2)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedup = %v, want %v", got, want)
	}
}

// TestMigrationFaultedDeterminism: a faulted migration is a pure function
// of (memory seed, fault spec, injector seed) - two identical runs agree
// on every stat and every image byte.
func TestMigrationFaultedDeterminism(t *testing.T) {
	run := func() (Stats, map[mem.GPA][]byte) {
		g, base, _ := setupFaulted(t, 64, "send-fail:0.2,wire-corrupt:0.2,dest-stall:0.3", 5)
		proc, _ := g.Kernel.Process(1)
		image, stats, err := Migrate(g.VM, Options{MaxRounds: 4}, func(round int) error {
			return proc.WriteU64(base.Add(uint64(round)*mem.PageSize), uint64(round))
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, image
	}
	s1, i1 := run()
	s2, i2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if len(i1) != len(i2) {
		t.Fatalf("image sizes diverged: %d vs %d", len(i1), len(i2))
	}
	for gpa, b1 := range i1 {
		if !bytes.Equal(b1, i2[gpa]) {
			t.Errorf("image content diverged at %v", gpa)
		}
	}
}

// TestMigrationErrorPathsEndSpans pins the span-leak fix: failed
// migrations must leave the profiler's span stack balanced, so repeated
// failures never nest later spans under dead rounds (which skewed
// CriticalPath attribution exactly when failures occurred).
func TestMigrationErrorPathsEndSpans(t *testing.T) {
	parsed, err := faults.ParseSpec("send-fail")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(parsed, 1)
	p := prof.New()
	m, err := machine.New(machine.Config{Faults: inj, Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(8*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), uint64(p)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := Migrate(g.VM, Options{}, nil); !errors.Is(err, ErrSendFailed) {
			t.Fatalf("run %d: %v, want ErrSendFailed", i, err)
		}
	}
	// A leaked round span would stack the second run's paths under the
	// first run's dead round0: max depth migrate -> round -> send is 3.
	for _, ps := range p.Paths() {
		if len(ps.Path) > 3 {
			t.Errorf("leaked span: path depth %d: %v", len(ps.Path), ps.Path)
		}
		for _, f := range ps.Path[1:] {
			if f.Op == "migrate" {
				t.Errorf("nested migrate span - a failed run leaked its stack: %v", ps.Path)
			}
		}
	}
	_ = region
}
