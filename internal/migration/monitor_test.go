package migration

import (
	"errors"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// setupMonitored is setupPlain with an online monitor attached to the
// machine.
func setupMonitored(t *testing.T, pages int) (*monitor.Monitor, *metrics.Registry, *machine.Guest, mem.GVA) {
	t.Helper()
	reg := metrics.NewRegistry()
	mon := monitor.New(monitor.Config{})
	m, err := machine.New(machine.Config{Metrics: reg, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(77)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return mon, reg, g, region.Start
}

// TestMonitorPredictsBeforeSLOAbort is the acceptance property: under a
// dirty-rate storm the convergence predictor must flag the migration as
// non-converging strictly before the driver's SLO guard trips ErrSLOAbort
// - at an earlier round and an earlier virtual time.
func TestMonitorPredictsBeforeSLOAbort(t *testing.T) {
	mon, reg, g, base := setupMonitored(t, 256)
	proc, _ := g.Kernel.Process(1)
	_, stats, err := Migrate(g.VM, Options{
		MaxRounds:           3,
		BandwidthPagesPerMS: 1,
		DowntimeTargetPages: 8,
		DowntimeBudget:      5 * time.Millisecond,
	}, func(round int) error {
		// The storm: 48 fresh dirty pages every round, never shrinking.
		for i := 0; i < 48; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrSLOAbort) {
		t.Fatalf("err = %v, want ErrSLOAbort", err)
	}
	abortTime := g.Kernel.Clock.Nanos()

	preds := mon.Predictions()
	if len(preds) != 1 {
		t.Fatalf("predictions = %+v, want exactly one non-convergence flag", preds)
	}
	p := preds[0]
	if p.Sub != monitor.SubMigration || p.VM != 0 {
		t.Errorf("prediction = %+v, want migration/vm0", p)
	}
	// Strictly before the guard: the guard can only trip after the final
	// round (round > MaxRounds); the flag must land on an earlier round
	// and at an earlier virtual time.
	if p.Round >= stats.Rounds {
		t.Errorf("flagged at round %d, want before the final round %d", p.Round, stats.Rounds)
	}
	if p.TS >= abortTime {
		t.Errorf("flagged at %d ns, abort at %d ns: want strictly earlier", p.TS, abortTime)
	}
	if p.RoundsToConverge != monitor.NeverConverges {
		t.Errorf("RoundsToConverge = %d, want NeverConverges", p.RoundsToConverge)
	}
	// The estimators saw the storm through the PML log feed.
	snap := mon.Snapshot()
	var sawPML bool
	for _, e := range snap.Estimators {
		if e.Name == "vm0/pml" && e.Pages > 0 {
			sawPML = true
		}
	}
	if !sawPML {
		t.Errorf("no vm0/pml estimator pages; estimators = %+v", snap.Estimators)
	}
	// The live gauges carry the verdict for rules and dashboards.
	if g := reg.LookupGauge(metrics.SubMonitor, "predicted_rounds_to_converge", "vm0/migration"); g.Value() != monitor.NeverConverges {
		t.Errorf("predicted_rounds_to_converge gauge = %d, want %d", g.Value(), monitor.NeverConverges)
	}
	if g := reg.LookupGauge(metrics.SubMonitor, "downtime_burn_permille", "vm0/migration"); g.Value() <= 1000 {
		t.Errorf("downtime_burn_permille gauge = %d, want > 1000 (over budget)", g.Value())
	}
}

// TestMonitorQuietOnConvergingMigration: a migration that converges inside
// its round budget must produce no predictions and record a converging
// round series.
func TestMonitorQuietOnConvergingMigration(t *testing.T) {
	mon, _, g, base := setupMonitored(t, 128)
	proc, _ := g.Kernel.Process(1)
	_, stats, err := Migrate(g.VM, Options{
		MaxRounds:           6,
		BandwidthPagesPerMS: 64,
		DowntimeTargetPages: 8,
	}, func(round int) error {
		// Shrinking write set: 32, 16, 8, ...
		n := 32 >> uint(round-1)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if err := proc.WriteU64(base.Add(uint64(i)*mem.PageSize), uint64(round)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("stats = %+v, want converged", stats)
	}
	if preds := mon.Predictions(); len(preds) != 0 {
		t.Errorf("converging migration flagged: %+v", preds)
	}
	snap := mon.Snapshot()
	if len(snap.Rounds) != 1 {
		t.Fatalf("rounds = %+v, want one migration series", snap.Rounds)
	}
	if snap.Rounds[0].Flagged {
		t.Error("round series flagged on a converged run")
	}
}
