package workloads

import (
	"fmt"

	"repro/internal/gheap"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// BabyDBM mirrors tkrzw's BabyDBM: an on-memory B+ tree. Nodes are
// fixed-size guest heap blocks; splits propagate up and every insert
// rewrites one leaf page plus, occasionally, interior pages - the classic
// clustered dirty pattern of a page-structured store.
//
// Node layout (order btreeOrder, max keys = btreeOrder-1):
//
//	offset 0:                 header: leaf flag (bit 0) | nkeys<<1
//	offset 8..8+K*8:          keys
//	leaf:   offset vo..vo+K*8: values,  offset no: next-leaf link
//	inner:  offset vo..vo+O*8: children
type BabyDBM struct {
	proc *guestos.Process
	heap *gheap.Heap
	// rootCell holds the root node address in guest memory.
	rootCell mem.GVA
	count    int
	depth    int
}

const (
	btreeOrder   = 16             // children per inner node
	btreeMaxKeys = btreeOrder - 1 // 15
	btreeHdrOff  = 0
	btreeKeyOff  = 8
	btreeValOff  = btreeKeyOff + btreeMaxKeys*8 // 128
	btreeNodeSz  = btreeValOff + btreeOrder*8   // 256 (leaf uses last slot as next-link)
)

// Name implements KVEngine.
func (d *BabyDBM) Name() string { return "baby" }

// Count implements KVEngine.
func (d *BabyDBM) Count() int { return d.count }

// Depth returns the current tree depth (validation helper).
func (d *BabyDBM) Depth() int { return d.depth }

// Open implements KVEngine.
func (d *BabyDBM) Open(alloc Allocator, rng *sim.RNG, capacity int) error {
	d.proc = alloc.Proc()
	cell, err := alloc.Alloc(8)
	if err != nil {
		return err
	}
	d.rootCell = cell
	heap, err := gheap.New(d.proc, uint64(capacity/btreeMaxKeys+64)*2*btreeNodeSz+1<<18, false)
	if err != nil {
		return err
	}
	d.heap = heap
	root, err := d.newNode(true)
	if err != nil {
		return err
	}
	d.depth = 1
	return d.proc.WriteU64(cell, root)
}

func (d *BabyDBM) newNode(leaf bool) (uint64, error) {
	addr, err := d.heap.Alloc(btreeNodeSz)
	if err != nil {
		return 0, err
	}
	hdr := uint64(0)
	if leaf {
		hdr = 1
	}
	if err := d.proc.WriteU64(addr, hdr); err != nil {
		return 0, err
	}
	return uint64(addr), nil
}

func (d *BabyDBM) header(node uint64) (leaf bool, nkeys int, err error) {
	h, err := d.proc.ReadU64(mem.GVA(node))
	if err != nil {
		return false, 0, err
	}
	return h&1 == 1, int(h >> 1), nil
}

func (d *BabyDBM) setHeader(node uint64, leaf bool, nkeys int) error {
	h := uint64(nkeys) << 1
	if leaf {
		h |= 1
	}
	return d.proc.WriteU64(mem.GVA(node), h)
}

func (d *BabyDBM) key(node uint64, i int) (uint64, error) {
	return d.proc.ReadU64(mem.GVA(node).Add(btreeKeyOff + uint64(i)*8))
}

func (d *BabyDBM) setKey(node uint64, i int, k uint64) error {
	return d.proc.WriteU64(mem.GVA(node).Add(btreeKeyOff+uint64(i)*8), k)
}

func (d *BabyDBM) val(node uint64, i int) (uint64, error) {
	return d.proc.ReadU64(mem.GVA(node).Add(btreeValOff + uint64(i)*8))
}

func (d *BabyDBM) setVal(node uint64, i int, v uint64) error {
	return d.proc.WriteU64(mem.GVA(node).Add(btreeValOff+uint64(i)*8), v)
}

// child slots share the value slots on inner nodes (btreeOrder of them).
func (d *BabyDBM) child(node uint64, i int) (uint64, error) { return d.val(node, i) }

func (d *BabyDBM) setChild(node uint64, i int, c uint64) error { return d.setVal(node, i, c) }

// findSlot locates the position of key within node's keys: the first index
// with keys[i] >= key.
func (d *BabyDBM) findSlot(node uint64, nkeys int, key uint64) (int, bool, error) {
	lo, hi := 0, nkeys
	for lo < hi {
		mid := (lo + hi) / 2
		k, err := d.key(node, mid)
		if err != nil {
			return 0, false, err
		}
		if k < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < nkeys {
		k, err := d.key(node, lo)
		if err != nil {
			return 0, false, err
		}
		return lo, k == key, nil
	}
	return lo, false, nil
}

// splitResult carries a split's separator key and new right sibling.
type splitResult struct {
	split bool
	key   uint64
	right uint64
}

// insert descends into node; on child overflow it splits and returns the
// separator to the caller.
func (d *BabyDBM) insert(node uint64, key, value uint64) (splitResult, error) {
	leaf, nkeys, err := d.header(node)
	if err != nil {
		return splitResult{}, err
	}
	slot, exact, err := d.findSlot(node, nkeys, key)
	if err != nil {
		return splitResult{}, err
	}

	if leaf {
		if exact {
			return splitResult{}, d.setVal(node, slot, value)
		}
		// Shift keys/values right and insert.
		for i := nkeys; i > slot; i-- {
			k, err := d.key(node, i-1)
			if err != nil {
				return splitResult{}, err
			}
			v, err := d.val(node, i-1)
			if err != nil {
				return splitResult{}, err
			}
			if err := d.setKey(node, i, k); err != nil {
				return splitResult{}, err
			}
			if err := d.setVal(node, i, v); err != nil {
				return splitResult{}, err
			}
		}
		if err := d.setKey(node, slot, key); err != nil {
			return splitResult{}, err
		}
		if err := d.setVal(node, slot, value); err != nil {
			return splitResult{}, err
		}
		nkeys++
		d.count++
		if err := d.setHeader(node, true, nkeys); err != nil {
			return splitResult{}, err
		}
		if nkeys < btreeMaxKeys {
			return splitResult{}, nil
		}
		return d.splitLeaf(node, nkeys)
	}

	// Inner node: descend. findSlot gives the separating child index;
	// keys[i] is the smallest key of child i+1.
	ci := slot
	if exact {
		ci = slot + 1
	}
	childAddr, err := d.child(node, ci)
	if err != nil {
		return splitResult{}, err
	}
	res, err := d.insert(childAddr, key, value)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// Insert separator res.key and child res.right at position ci.
	for i := nkeys; i > ci; i-- {
		k, err := d.key(node, i-1)
		if err != nil {
			return splitResult{}, err
		}
		if err := d.setKey(node, i, k); err != nil {
			return splitResult{}, err
		}
		c, err := d.child(node, i)
		if err != nil {
			return splitResult{}, err
		}
		if err := d.setChild(node, i+1, c); err != nil {
			return splitResult{}, err
		}
	}
	if err := d.setKey(node, ci, res.key); err != nil {
		return splitResult{}, err
	}
	if err := d.setChild(node, ci+1, res.right); err != nil {
		return splitResult{}, err
	}
	nkeys++
	if err := d.setHeader(node, false, nkeys); err != nil {
		return splitResult{}, err
	}
	if nkeys < btreeMaxKeys {
		return splitResult{}, nil
	}
	return d.splitInner(node, nkeys)
}

// splitLeaf splits a full leaf in half; the separator is the right half's
// first key (B+ tree style: the key stays in the leaf).
func (d *BabyDBM) splitLeaf(node uint64, nkeys int) (splitResult, error) {
	mid := nkeys / 2
	right, err := d.newNode(true)
	if err != nil {
		return splitResult{}, err
	}
	for i := mid; i < nkeys; i++ {
		k, err := d.key(node, i)
		if err != nil {
			return splitResult{}, err
		}
		v, err := d.val(node, i)
		if err != nil {
			return splitResult{}, err
		}
		if err := d.setKey(right, i-mid, k); err != nil {
			return splitResult{}, err
		}
		if err := d.setVal(right, i-mid, v); err != nil {
			return splitResult{}, err
		}
	}
	if err := d.setHeader(right, true, nkeys-mid); err != nil {
		return splitResult{}, err
	}
	if err := d.setHeader(node, true, mid); err != nil {
		return splitResult{}, err
	}
	sep, err := d.key(right, 0)
	if err != nil {
		return splitResult{}, err
	}
	return splitResult{split: true, key: sep, right: right}, nil
}

// splitInner splits a full inner node; the middle key moves up.
func (d *BabyDBM) splitInner(node uint64, nkeys int) (splitResult, error) {
	mid := nkeys / 2
	sep, err := d.key(node, mid)
	if err != nil {
		return splitResult{}, err
	}
	right, err := d.newNode(false)
	if err != nil {
		return splitResult{}, err
	}
	for i := mid + 1; i < nkeys; i++ {
		k, err := d.key(node, i)
		if err != nil {
			return splitResult{}, err
		}
		if err := d.setKey(right, i-mid-1, k); err != nil {
			return splitResult{}, err
		}
	}
	for i := mid + 1; i <= nkeys; i++ {
		c, err := d.child(node, i)
		if err != nil {
			return splitResult{}, err
		}
		if err := d.setChild(right, i-mid-1, c); err != nil {
			return splitResult{}, err
		}
	}
	if err := d.setHeader(right, false, nkeys-mid-1); err != nil {
		return splitResult{}, err
	}
	if err := d.setHeader(node, false, mid); err != nil {
		return splitResult{}, err
	}
	return splitResult{split: true, key: sep, right: right}, nil
}

// Set implements KVEngine.
func (d *BabyDBM) Set(key, value uint64) error {
	root, err := d.proc.ReadU64(d.rootCell)
	if err != nil {
		return err
	}
	res, err := d.insert(root, key, value)
	if err != nil {
		return err
	}
	if !res.split {
		return nil
	}
	// Grow a new root.
	newRoot, err := d.newNode(false)
	if err != nil {
		return err
	}
	if err := d.setKey(newRoot, 0, res.key); err != nil {
		return err
	}
	if err := d.setChild(newRoot, 0, root); err != nil {
		return err
	}
	if err := d.setChild(newRoot, 1, res.right); err != nil {
		return err
	}
	if err := d.setHeader(newRoot, false, 1); err != nil {
		return err
	}
	d.depth++
	return d.proc.WriteU64(d.rootCell, newRoot)
}

// Get implements KVEngine.
func (d *BabyDBM) Get(key uint64) (uint64, bool, error) {
	node, err := d.proc.ReadU64(d.rootCell)
	if err != nil {
		return 0, false, err
	}
	for depth := 0; depth < 64; depth++ {
		leaf, nkeys, err := d.header(node)
		if err != nil {
			return 0, false, err
		}
		slot, exact, err := d.findSlot(node, nkeys, key)
		if err != nil {
			return 0, false, err
		}
		if leaf {
			if !exact {
				return 0, false, nil
			}
			v, err := d.val(node, slot)
			return v, err == nil, err
		}
		ci := slot
		if exact {
			ci = slot + 1
		}
		node, err = d.child(node, ci)
		if err != nil {
			return 0, false, err
		}
	}
	return 0, false, fmt.Errorf("baby: tree deeper than 64 levels (corrupt)")
}
