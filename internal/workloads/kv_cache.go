package workloads

import (
	"fmt"

	"repro/internal/gheap"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// CacheDBM mirrors tkrzw's CacheDBM: a hash map bounded by -cap_rec_num;
// when full, the least-recently-used record is evicted. Nodes live in the
// guest heap and carry hash-chain and LRU-list links:
//
//	offset 0:  key
//	offset 8:  value
//	offset 16: hnext (hash chain)
//	offset 24: lprev (LRU list)
//	offset 32: lnext
//
// The constant re-linking of the LRU list makes cache the most
// write-intensive engine per request, matching its high rank in the
// paper's CRIU figures.
type CacheDBM struct {
	Capacity int // -cap_rec_num
	Buckets  uint64

	proc  *guestos.Process
	heap  *gheap.Heap
	heads mem.GVA
	// LRU list endpoints (guest addresses of nodes; 0 = none).
	lruHead, lruTail uint64
	count            int
	Evictions        int
}

const cacheNodeBytes = 40

// Name implements KVEngine.
func (d *CacheDBM) Name() string { return "cache" }

// Count implements KVEngine.
func (d *CacheDBM) Count() int { return d.count }

// Open implements KVEngine.
func (d *CacheDBM) Open(alloc Allocator, rng *sim.RNG, capacity int) error {
	if d.Capacity == 0 {
		d.Capacity = capacity
	}
	if d.Buckets == 0 {
		d.Buckets = uint64(d.Capacity)*2 + 1
	}
	d.proc = alloc.Proc()
	heads, err := alloc.Alloc(d.Buckets * 8)
	if err != nil {
		return err
	}
	d.heads = heads
	heap, err := gheap.New(d.proc, uint64(d.Capacity+16)*cacheNodeBytes+1<<16, false)
	if err != nil {
		return err
	}
	d.heap = heap
	return nil
}

func (d *CacheDBM) read(addr uint64, off uint64) (uint64, error) {
	return d.proc.ReadU64(mem.GVA(addr).Add(off))
}

func (d *CacheDBM) write(addr uint64, off uint64, v uint64) error {
	return d.proc.WriteU64(mem.GVA(addr).Add(off), v)
}

// findNode walks the hash chain for key.
func (d *CacheDBM) findNode(key uint64) (node uint64, bucket uint64, err error) {
	bucket = mix64(key) % d.Buckets
	node, err = d.proc.ReadU64(d.heads.Add(bucket * 8))
	if err != nil {
		return 0, bucket, err
	}
	for node != 0 {
		k, err := d.read(node, 0)
		if err != nil {
			return 0, bucket, err
		}
		if k == key {
			return node, bucket, nil
		}
		node, err = d.read(node, 16)
		if err != nil {
			return 0, bucket, err
		}
	}
	return 0, bucket, nil
}

// lruUnlink detaches node from the LRU list.
func (d *CacheDBM) lruUnlink(node uint64) error {
	prev, err := d.read(node, 24)
	if err != nil {
		return err
	}
	next, err := d.read(node, 32)
	if err != nil {
		return err
	}
	if prev != 0 {
		if err := d.write(prev, 32, next); err != nil {
			return err
		}
	} else {
		d.lruHead = next
	}
	if next != 0 {
		if err := d.write(next, 24, prev); err != nil {
			return err
		}
	} else {
		d.lruTail = prev
	}
	return nil
}

// lruPushFront makes node the most recently used.
func (d *CacheDBM) lruPushFront(node uint64) error {
	if err := d.write(node, 24, 0); err != nil {
		return err
	}
	if err := d.write(node, 32, d.lruHead); err != nil {
		return err
	}
	if d.lruHead != 0 {
		if err := d.write(d.lruHead, 24, node); err != nil {
			return err
		}
	}
	d.lruHead = node
	if d.lruTail == 0 {
		d.lruTail = node
	}
	return nil
}

// hashUnlink removes node from its bucket chain.
func (d *CacheDBM) hashUnlink(node uint64, key uint64) error {
	bucket := mix64(key) % d.Buckets
	headAddr := d.heads.Add(bucket * 8)
	cur, err := d.proc.ReadU64(headAddr)
	if err != nil {
		return err
	}
	if cur == node {
		next, err := d.read(node, 16)
		if err != nil {
			return err
		}
		return d.proc.WriteU64(headAddr, next)
	}
	for cur != 0 {
		next, err := d.read(cur, 16)
		if err != nil {
			return err
		}
		if next == node {
			nn, err := d.read(node, 16)
			if err != nil {
				return err
			}
			return d.write(cur, 16, nn)
		}
		cur = next
	}
	return fmt.Errorf("cache: node %#x not in its chain", node)
}

// evictLRU removes the least recently used record.
func (d *CacheDBM) evictLRU() error {
	victim := d.lruTail
	if victim == 0 {
		return fmt.Errorf("cache: evict with empty LRU list")
	}
	key, err := d.read(victim, 0)
	if err != nil {
		return err
	}
	if err := d.lruUnlink(victim); err != nil {
		return err
	}
	if err := d.hashUnlink(victim, key); err != nil {
		return err
	}
	if err := d.heap.Free(mem.GVA(victim)); err != nil {
		return err
	}
	d.count--
	d.Evictions++
	return nil
}

// Set implements KVEngine.
func (d *CacheDBM) Set(key, value uint64) error {
	node, bucket, err := d.findNode(key)
	if err != nil {
		return err
	}
	if node != 0 {
		if err := d.write(node, 8, value); err != nil {
			return err
		}
		if err := d.lruUnlink(node); err != nil {
			return err
		}
		return d.lruPushFront(node)
	}
	if d.count >= d.Capacity {
		if err := d.evictLRU(); err != nil {
			return err
		}
	}
	addr, err := d.heap.Alloc(cacheNodeBytes)
	if err != nil {
		return err
	}
	node = uint64(addr)
	headAddr := d.heads.Add(bucket * 8)
	head, err := d.proc.ReadU64(headAddr)
	if err != nil {
		return err
	}
	if err := d.write(node, 0, key); err != nil {
		return err
	}
	if err := d.write(node, 8, value); err != nil {
		return err
	}
	if err := d.write(node, 16, head); err != nil {
		return err
	}
	if err := d.proc.WriteU64(headAddr, node); err != nil {
		return err
	}
	d.count++
	return d.lruPushFront(node)
}

// Get implements KVEngine: a hit also refreshes recency.
func (d *CacheDBM) Get(key uint64) (uint64, bool, error) {
	node, _, err := d.findNode(key)
	if err != nil || node == 0 {
		return 0, false, err
	}
	v, err := d.read(node, 8)
	if err != nil {
		return 0, false, err
	}
	if err := d.lruUnlink(node); err != nil {
		return 0, false, err
	}
	if err := d.lruPushFront(node); err != nil {
		return 0, false, err
	}
	return v, true, nil
}
