package workloads

import (
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// Histogram is Phoenix's histogram kernel: scan a bitmap file of RGB
// pixels and count the occurrences of each 8-bit value per channel. The
// input file lives in guest memory (Table III drives it with 0.1-1.5 GB
// data files); the 3x256 counter arrays are the write-hot set, while the
// scan dirties nothing - a read-mostly tracked process.
type Histogram struct {
	FileBytes uint64

	proc  *guestos.Process
	file  mem.GVA
	bins  mem.GVA // 3*256 u64 counters: R, G, B
	ready bool

	// Totals carries the final counts for result verification.
	Totals [3][256]uint64

	// binMemo caches one pass's bin counts. The file region is immutable
	// after Setup, so every pass bins the same bytes; later passes reuse
	// the counts while still issuing the same guest reads. The cumulative
	// Totals reduce (and its guest writes) stays per-pass.
	memoValid bool
	binMemo   [3][256]uint64
}

// NewHistogram returns the kernel over a synthetic file of n bytes.
func NewHistogram(fileBytes uint64) *Histogram { return &Histogram{FileBytes: fileBytes} }

// Name implements Workload.
func (w *Histogram) Name() string { return "phoenix/histogram" }

// Setup implements Workload: generate the input file in guest memory.
func (w *Histogram) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	var err error
	if w.file, err = alloc.Alloc(w.FileBytes); err != nil {
		return err
	}
	if err := fillRandom(w.proc, w.file, w.FileBytes, rng); err != nil {
		return err
	}
	if w.bins, err = alloc.Alloc(3 * 256 * 8); err != nil {
		return err
	}
	w.memoValid = false
	w.ready = true
	return nil
}

// Run implements Workload: one full scan of the file, accumulating pixel
// counts, then writing the counter arrays back to guest memory.
func (w *Histogram) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	var local [3][256]uint64
	useMemo := simcache.WorkloadMemoEnabled()
	bin := !(useMemo && w.memoValid)
	buf := make([]byte, mem.PageSize)
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if err := readChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
		if !bin {
			continue
		}
		for i := 0; i+2 < int(n); i += 3 {
			local[0][buf[i]]++
			local[1][buf[i+1]]++
			local[2][buf[i+2]]++
		}
	}
	if bin {
		if useMemo {
			w.binMemo = local
			w.memoValid = true
		}
	} else {
		local = w.binMemo
	}
	// Reduce phase: store counters to guest memory (the dirty writes).
	out := make([]byte, 256*8)
	for ch := 0; ch < 3; ch++ {
		for v := 0; v < 256; v++ {
			w.Totals[ch][v] += local[ch][v]
			putU64(out, v*8, w.Totals[ch][v])
		}
		if err := writeChunk(w.proc, w.bins.Add(uint64(ch)*256*8), out); err != nil {
			return err
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *Histogram) WorkingSet() uint64 { return w.FileBytes + 3*256*8 }
