package workloads

import (
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ArrayParser is the paper's Listing-1 microbenchmark: an array of
// page-sized buffers, pinned in memory (mlockall), written one word per
// page per pass:
//
//	for(;;)
//	  for (i = 0; i < num_pg; i++)
//	    region[(i*PAGE_SIZE)/sizeof(long)] = i;
//
// Run performs one inner pass over the array.
type ArrayParser struct {
	Pages int

	proc   *guestos.Process
	region guestos.Region
	pass   uint64
	ready  bool
}

// NewArrayParser returns the microbenchmark over n pages.
func NewArrayParser(pages int) *ArrayParser { return &ArrayParser{Pages: pages} }

// Name implements Workload.
func (w *ArrayParser) Name() string { return "micro/array-parser" }

// Setup implements Workload: allocate and pin the array.
func (w *ArrayParser) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	start, err := alloc.Alloc(uint64(w.Pages) * mem.PageSize)
	if err != nil {
		return err
	}
	w.region = guestos.Region{Start: start, End: start.Add(uint64(w.Pages) * mem.PageSize)}
	// mlockall: touch every page so none is demand-faulted during the
	// monitored passes.
	for p := 0; p < w.Pages; p++ {
		if err := w.proc.WriteU64(w.region.Start.Add(uint64(p)*mem.PageSize), 0); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// Adopt binds w to a process whose memory already holds the image a
// previous Setup produced - the snapshot-fork fast path: the forked guest
// replays the warmed array, so only the host-side binding (process handle,
// region, rewound pass counter) needs rebuilding. region must be the
// Region() of the workload that warmed the capture source.
func (w *ArrayParser) Adopt(proc *guestos.Process, region guestos.Region) {
	w.proc = proc
	w.region = region
	w.pass = 0
	w.ready = true
}

// Run implements Workload: one pass writing one word into every page.
func (w *ArrayParser) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	w.pass++
	for i := 0; i < w.Pages; i++ {
		gva := w.region.Start.Add(uint64(i) * mem.PageSize)
		if err := w.proc.WriteU64(gva, uint64(i)+w.pass<<32); err != nil {
			return err
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *ArrayParser) WorkingSet() uint64 { return uint64(w.Pages) * mem.PageSize }

// Region exposes the monitored array (tests assert on its dirty set).
func (w *ArrayParser) Region() guestos.Region { return w.region }
