package workloads

import (
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// WordCount is Phoenix's word-count kernel: tokenize a text file and count
// word frequencies into a hash table. The table writes hash-scatter across
// the whole table region - the adversarial dirty pattern for page-granular
// tracking, since one counter update dirties a full 4 KiB page.
type WordCount struct {
	FileBytes uint64
	Buckets   int // hash table slots (each 16 bytes: tag + count)

	proc  *guestos.Process
	file  mem.GVA
	table mem.GVA
	ready bool

	// Words counts tokens seen in the last Run.
	Words int
}

// NewWordCount returns the kernel over a synthetic file of n bytes with the
// given hash table size.
func NewWordCount(fileBytes uint64, buckets int) *WordCount {
	if buckets <= 0 {
		buckets = 1 << 14
	}
	return &WordCount{FileBytes: fileBytes, Buckets: buckets}
}

// Name implements Workload.
func (w *WordCount) Name() string { return "phoenix/word-count" }

// Setup implements Workload: synthesize text from a zipf-ish vocabulary.
func (w *WordCount) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	var err error
	if w.file, err = alloc.Alloc(w.FileBytes); err != nil {
		return err
	}
	if w.table, err = alloc.Alloc(uint64(w.Buckets) * 16); err != nil {
		return err
	}
	buf := make([]byte, mem.PageSize)
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		i := 0
		for i < int(n) {
			// Word length 3-9, then a space.
			wl := 3 + rng.Intn(7)
			for j := 0; j < wl && i < int(n); j++ {
				buf[i] = byte('a' + rng.Intn(26))
				i++
			}
			if i < int(n) {
				buf[i] = ' '
				i++
			}
		}
		if err := writeChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// fnv1a hashes a word.
func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// Run implements Workload: tokenize and count. Counter updates batch per
// bucket in host memory during the map phase; the reduce phase writes each
// touched bucket back (read-modify-write of its 16-byte slot).
func (w *WordCount) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	w.Words = 0
	buf := make([]byte, mem.PageSize)
	local := make(map[uint64]uint64) // bucket -> added count
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if err := readChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
		start := -1
		for i := 0; i <= int(n); i++ {
			inWord := i < int(n) && buf[i] != ' '
			if inWord && start < 0 {
				start = i
			}
			if !inWord && start >= 0 {
				h := fnv1a(buf[start:i])
				local[h%uint64(w.Buckets)] += 1
				w.Words++
				start = -1
			}
		}
	}
	// Reduce: merge batched counts into the guest-resident table.
	slot := make([]byte, 16)
	for bucket, add := range local {
		addr := w.table.Add(bucket * 16)
		if err := readChunk(w.proc, addr, slot); err != nil {
			return err
		}
		putU64(slot, 0, bucket)             // tag
		putU64(slot, 8, u64At(slot, 8)+add) // count
		if err := writeChunk(w.proc, addr, slot); err != nil {
			return err
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *WordCount) WorkingSet() uint64 { return w.FileBytes + uint64(w.Buckets)*16 }
