// Package workloads implements the paper's tracked applications as real
// algorithms operating on simulated guest memory: the Listing-1 array
// parser microbenchmark, GCBench, the six Phoenix MapReduce kernels
// (histogram, kmeans, matrix-multiply, pca, string-match, word-count) and
// the five tkrzw in-memory key-value engines (baby, cache, stdhash,
// stdtree, tiny) under set-request injection (Table III).
//
// What the evaluation depends on is each workload's dirty page pattern -
// which pages it writes, how often, over what working set. The kernels
// here compute real results on real data; bulk data moves between guest
// memory and host computation in page-sized chunks, so the number of
// simulated MMU operations stays proportional to pages touched, exactly
// the granularity every tracking technique observes.
package workloads

import (
	"fmt"
	"time"

	"repro/internal/boehmgc"
	"repro/internal/gheap"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Workload is one tracked application. Setup allocates and populates its
// memory; Run performs one pass of its computation and may be called
// repeatedly (checkpoint pre-copy rounds and GC cycles interleave with
// passes).
type Workload interface {
	Name() string
	Setup(alloc Allocator, rng *sim.RNG) error
	Run() error
	// WorkingSet returns the approximate bytes of memory the workload
	// touches, for reporting and cost-curve selection.
	WorkingSet() uint64
}

// Allocator abstracts where a workload's memory comes from: plain mmapped
// regions for the CRIU experiments, or the Boehm GC heap for the GC
// experiments (the paper links Phoenix against Boehm, turning mallocs into
// GC_malloc).
type Allocator interface {
	Alloc(size uint64) (mem.GVA, error)
	Proc() *guestos.Process
}

// RegionAlloc serves allocations from fresh mmapped regions.
type RegionAlloc struct {
	P *guestos.Process
	// Eager pre-faults allocations (the microbenchmark's mlockall).
	Eager bool
}

// NewRegionAlloc returns a region-backed allocator for proc.
func NewRegionAlloc(proc *guestos.Process, eager bool) *RegionAlloc {
	return &RegionAlloc{P: proc, Eager: eager}
}

// Alloc implements Allocator.
func (a *RegionAlloc) Alloc(size uint64) (mem.GVA, error) {
	r, err := a.P.Mmap(size, a.Eager)
	if err != nil {
		return 0, err
	}
	return r.Start, nil
}

// Proc implements Allocator.
func (a *RegionAlloc) Proc() *guestos.Process { return a.P }

// HeapAlloc serves allocations from a gheap arena.
type HeapAlloc struct {
	H *gheap.Heap
}

// Alloc implements Allocator.
func (a *HeapAlloc) Alloc(size uint64) (mem.GVA, error) { return a.H.Alloc(size) }

// Proc implements Allocator.
func (a *HeapAlloc) Proc() *guestos.Process { return a.H.Proc }

// GCAlloc serves allocations as rooted, pointer-free GC objects: the
// workload's data lives on the collected heap, so GC cycles must scan (or,
// incrementally, skip) it.
type GCAlloc struct {
	GC *boehmgc.GC
}

// Alloc implements Allocator.
func (a *GCAlloc) Alloc(size uint64) (mem.GVA, error) {
	obj, err := a.GC.Alloc(size, 0)
	if err != nil {
		return 0, err
	}
	a.GC.AddRoot(obj)
	return obj.Addr.Add(8), nil // payload starts after the header word
}

// Proc implements Allocator.
func (a *GCAlloc) Proc() *guestos.Process { return a.GC.Proc }

// --- chunked guest accessors ---------------------------------------------------

// readChunk reads n bytes at gva into a reusable buffer, charging the
// workload's per-byte processing time: the kernels compute real results
// from real data on the host, and this is where that work costs virtual
// time.
func readChunk(p *guestos.Process, gva mem.GVA, buf []byte) error {
	k := p.Kernel()
	k.Clock.Advance(k.Model.ComputePerByte * time.Duration(len(buf)))
	return p.Read(gva, buf)
}

// writeChunk writes buf at gva, charging per-byte processing time.
func writeChunk(p *guestos.Process, gva mem.GVA, buf []byte) error {
	k := p.Kernel()
	k.Clock.Advance(k.Model.ComputePerByte * time.Duration(len(buf)))
	return p.Write(gva, buf)
}

// chargeFlops charges virtual time for n floating-point operations of a
// numeric kernel (matrix-multiply, pca, kmeans distance computations).
func chargeFlops(p *guestos.Process, n int64) {
	k := p.Kernel()
	k.Clock.Advance(k.Model.ComputePerFlop * time.Duration(n))
}

// fillRandom populates [gva, gva+size) with deterministic pseudo-random
// bytes, page by page.
func fillRandom(p *guestos.Process, gva mem.GVA, size uint64, rng *sim.RNG) error {
	buf := make([]byte, mem.PageSize)
	for off := uint64(0); off < size; off += mem.PageSize {
		n := size - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		rng.Bytes(buf[:n])
		if err := p.Write(gva.Add(off), buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// u64At decodes a little-endian u64 from b at off.
func u64At(b []byte, off int) uint64 {
	_ = b[off+7]
	return uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 | uint64(b[off+3])<<24 |
		uint64(b[off+4])<<32 | uint64(b[off+5])<<40 | uint64(b[off+6])<<48 | uint64(b[off+7])<<56
}

// putU64 encodes v into b at off.
func putU64(b []byte, off int, v uint64) {
	_ = b[off+7]
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
	b[off+4] = byte(v >> 32)
	b[off+5] = byte(v >> 40)
	b[off+6] = byte(v >> 48)
	b[off+7] = byte(v >> 56)
}

// checkSetup guards Run-before-Setup misuse uniformly.
func checkSetup(name string, ready bool) error {
	if !ready {
		return fmt.Errorf("workloads: %s.Run called before Setup", name)
	}
	return nil
}
