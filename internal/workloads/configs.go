package workloads

import (
	"fmt"
	"sort"
)

// Size selects a Table III configuration column.
type Size int

// Configuration sizes.
const (
	Small Size = iota
	Medium
	Large
)

func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// Sizes lists all configuration sizes in order.
func Sizes() []Size { return []Size{Small, Medium, Large} }

// Factory builds a workload for one Table III configuration, scaled down
// by scale (1 = a laptop-tractable base that preserves the Small:Medium:
// Large ratios; larger scale values grow toward the paper's absolute
// sizes).
type Factory func(size Size, scale int) Workload

// pick indexes a per-size triple.
func pick[T any](size Size, small, medium, large T) T {
	switch size {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return large
	}
}

// registry maps workload names to factories, mirroring Table III's rows.
var registry = map[string]Factory{
	// Phoenix: datafile sizes 0.1/0.5/1.5 GB scaled to 2/10/30 MB x scale.
	"histogram": func(size Size, scale int) Workload {
		return NewHistogram(uint64(scale) * pick(size, uint64(2<<20), 10<<20, 30<<20))
	},
	// kmeans -d/-c/-p 500..5K: points x dims scaled.
	"kmeans": func(size Size, scale int) Workload {
		n := scale * pick(size, 2048, 4096, 8192)
		return NewKMeans(n, pick(size, 16, 24, 32), 128)
	},
	// matrix-multiply 500/1K/2K: n scaled from 96/160/256.
	"matrix-multiply": func(size Size, scale int) Workload {
		return NewMatrixMultiply(scale * pick(size, 96, 160, 256))
	},
	// pca -r/-c 1K..10K: rows x cols scaled.
	"pca": func(size Size, scale int) Workload {
		return NewPCA(scale*pick(size, 1024, 2048, 4096), 256)
	},
	// string-match 50/100/200 MB files scaled to 2/4/8 MB x scale.
	"string-match": func(size Size, scale int) Workload {
		return NewStringMatch(uint64(scale) * pick(size, uint64(2<<20), 4<<20, 8<<20))
	},
	// word-count 50/100/200 MB files scaled likewise.
	"word-count": func(size Size, scale int) Workload {
		return NewWordCount(uint64(scale)*pick(size, uint64(2<<20), 4<<20, 8<<20), 1<<14)
	},
	// tkrzw engines: -iter 3M/5M/10M scaled to 6K/10K/20K x scale; thread
	// counts follow Table III.
	"baby": func(size Size, scale int) Workload {
		return NewTkrzw(&BabyDBM{}, scale*pick(size, 6000, 10000, 20000), 3, 0)
	},
	"cache": func(size Size, scale int) Workload {
		iters := scale * pick(size, 6000, 10000, 20000)
		return NewTkrzw(&CacheDBM{Capacity: iters}, iters, 5, 0)
	},
	"stdhash": func(size Size, scale int) Workload {
		return NewTkrzw(&StdHashDBM{Buckets: 1 << 12}, scale*pick(size, 6000, 10000, 20000), 2, 0)
	},
	"stdtree": func(size Size, scale int) Workload {
		return NewTkrzw(&StdTreeDBM{}, scale*pick(size, 6000, 10000, 20000), 2, 0)
	},
	"tiny": func(size Size, scale int) Workload {
		return NewTkrzw(&TinyDBM{}, scale*pick(size, 10000, 10000, 10000), pick(size, 3, 5, 7), 0)
	},
	"micro": func(size Size, scale int) Workload {
		return NewArrayParser(scale * pick(size, 256, 2560, 25600))
	},
}

// New builds the named workload at the given size and scale. Scale <= 0 is
// treated as 1.
func New(name string, size Size, scale int) (Workload, error) {
	if scale <= 0 {
		scale = 1
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return f(size, scale), nil
}

// Names lists the registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PhoenixNames lists the six Phoenix kernels.
func PhoenixNames() []string {
	return []string{"histogram", "kmeans", "matrix-multiply", "pca", "string-match", "word-count"}
}

// TkrzwNames lists the five tkrzw engines.
func TkrzwNames() []string {
	return []string{"baby", "cache", "stdhash", "stdtree", "tiny"}
}

// GCBenchConfig returns the Table III GCBench parameters at a size, scaled.
// Paper values: (500K,16,18), (650K,18,20), (750K,20,22); depths shrink by
// 6 at base scale to keep object counts tractable and grow with scale.
func GCBenchConfig(size Size, scale int) *GCBench {
	if scale <= 0 {
		scale = 1
	}
	extra := 0
	for s := scale; s > 1; s /= 2 {
		extra++
	}
	arr := uint64(scale) * pick(size, uint64(50_000), 65_000, 75_000)
	long := pick(size, 10, 12, 14) + extra
	stretch := long + 2
	return NewGCBench(arr, long, stretch)
}
