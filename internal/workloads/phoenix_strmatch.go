package workloads

import (
	"bytes"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// StringMatch is Phoenix's string-match kernel: scan a text file for a set
// of encrypted keys, recording match positions. The paper's Boehm
// experiment finds string-match the worst-case tracked app (232 % overhead
// under /proc, 273 % under SPML, 24 % under EPML). Matches are scattered
// across the file, so the match-flag writes dirty pages spread over a
// region proportional to the input.
type StringMatch struct {
	FileBytes uint64

	proc    *guestos.Process
	file    mem.GVA
	flags   mem.GVA // one byte per 64-byte window: match bitmap
	keys    [][]byte
	ready   bool
	Matches int
}

// stringMatchKeys mirrors Phoenix's four built-in keys.
var stringMatchKeys = []string{"key1_abc", "key2_def", "key3_ghi", "key4_jkl"}

// NewStringMatch returns the kernel over a synthetic file of n bytes.
func NewStringMatch(fileBytes uint64) *StringMatch { return &StringMatch{FileBytes: fileBytes} }

// Name implements Workload.
func (w *StringMatch) Name() string { return "phoenix/string-match" }

// Setup implements Workload: synthesize text with keys planted at
// deterministic pseudo-random offsets.
func (w *StringMatch) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	var err error
	if w.file, err = alloc.Alloc(w.FileBytes); err != nil {
		return err
	}
	if w.flags, err = alloc.Alloc(w.FileBytes/64 + 1); err != nil {
		return err
	}
	for _, k := range stringMatchKeys {
		w.keys = append(w.keys, []byte(k))
	}
	// Base text: lowercase noise, then plant a key every ~2 KiB.
	buf := make([]byte, mem.PageSize)
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		for i := range buf[:n] {
			buf[i] = byte('a' + rng.Intn(26))
		}
		for plant := 0; plant+len(stringMatchKeys[0]) < int(n); plant += 2048 {
			key := w.keys[rng.Intn(len(w.keys))]
			copy(buf[plant:], key)
		}
		if err := writeChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// Run implements Workload: one scan pass; each window containing a match
// gets its flag byte written.
func (w *StringMatch) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	w.Matches = 0
	buf := make([]byte, mem.PageSize)
	flagPage := make([]byte, mem.PageSize/64)
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if err := readChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
		dirty := false
		for i := range flagPage {
			flagPage[i] = 0
		}
		for _, key := range w.keys {
			at := 0
			for {
				idx := bytes.Index(buf[at:n], key)
				if idx < 0 {
					break
				}
				pos := at + idx
				flagPage[pos/64] = 1
				w.Matches++
				dirty = true
				at = pos + 1
			}
		}
		if dirty {
			if err := writeChunk(w.proc, w.flags.Add(off/64), flagPage[:(n+63)/64]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *StringMatch) WorkingSet() uint64 { return w.FileBytes + w.FileBytes/64 }
