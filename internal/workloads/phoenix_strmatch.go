package workloads

import (
	"bytes"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// StringMatch is Phoenix's string-match kernel: scan a text file for a set
// of encrypted keys, recording match positions. The paper's Boehm
// experiment finds string-match the worst-case tracked app (232 % overhead
// under /proc, 273 % under SPML, 24 % under EPML). Matches are scattered
// across the file, so the match-flag writes dirty pages spread over a
// region proportional to the input.
type StringMatch struct {
	FileBytes uint64

	proc    *guestos.Process
	file    mem.GVA
	flags   mem.GVA // one byte per 64-byte window: match bitmap
	keys    [][]byte
	ready   bool
	Matches int

	// anchor is the longest common prefix of the keys (empty disables the
	// anchored single-scan and falls back to one scan per key).
	anchor []byte

	// Per-page memo of the scan results. The file region is immutable
	// after Setup (Run writes only to the flags region), so the flag bytes
	// and match count of each page are a pure function of Setup output and
	// can be reused across passes. Guest reads are NOT memoized: every
	// pass still issues the same readChunk sequence.
	memoValid   bool
	pageFlags   [][]byte // nil entry = page had no matches
	pageMatches []int
}

// stringMatchKeys mirrors Phoenix's four built-in keys.
var stringMatchKeys = []string{"key1_abc", "key2_def", "key3_ghi", "key4_jkl"}

// NewStringMatch returns the kernel over a synthetic file of n bytes.
func NewStringMatch(fileBytes uint64) *StringMatch { return &StringMatch{FileBytes: fileBytes} }

// Name implements Workload.
func (w *StringMatch) Name() string { return "phoenix/string-match" }

// Setup implements Workload: synthesize text with keys planted at
// deterministic pseudo-random offsets.
func (w *StringMatch) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	var err error
	if w.file, err = alloc.Alloc(w.FileBytes); err != nil {
		return err
	}
	if w.flags, err = alloc.Alloc(w.FileBytes/64 + 1); err != nil {
		return err
	}
	w.keys = w.keys[:0]
	for _, k := range stringMatchKeys {
		w.keys = append(w.keys, []byte(k))
	}
	w.anchor = commonPrefix(w.keys)
	w.memoValid = false
	w.pageFlags = nil
	w.pageMatches = nil
	// Base text: lowercase noise, then plant a key every ~2 KiB.
	buf := make([]byte, mem.PageSize)
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		for i := range buf[:n] {
			buf[i] = byte('a' + rng.Intn(26))
		}
		for plant := 0; plant+len(stringMatchKeys[0]) < int(n); plant += 2048 {
			key := w.keys[rng.Intn(len(w.keys))]
			copy(buf[plant:], key)
		}
		if err := writeChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// commonPrefix returns the longest byte prefix shared by every key, or nil
// unless all keys also have equal length (the anchored scan compares fixed
// 8-byte windows).
func commonPrefix(keys [][]byte) []byte {
	if len(keys) == 0 {
		return nil
	}
	p := keys[0]
	for _, k := range keys[1:] {
		if len(k) != len(keys[0]) {
			return nil
		}
		for len(p) > 0 && !bytes.HasPrefix(k, p) {
			p = p[:len(p)-1]
		}
	}
	if len(p) == 0 {
		return nil
	}
	return p
}

// Run implements Workload: one scan pass; each window containing a match
// gets its flag byte written.
func (w *StringMatch) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	w.Matches = 0
	useMemo := simcache.WorkloadMemoEnabled()
	pages := int((w.FileBytes + mem.PageSize - 1) / mem.PageSize)
	if useMemo && !w.memoValid {
		w.pageFlags = make([][]byte, pages)
		w.pageMatches = make([]int, pages)
	}
	buf := make([]byte, mem.PageSize)
	flagPage := make([]byte, mem.PageSize/64)
	page := 0
	for off := uint64(0); off < w.FileBytes; off += mem.PageSize {
		n := w.FileBytes - off
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if err := readChunk(w.proc, w.file.Add(off), buf[:n]); err != nil {
			return err
		}
		if useMemo && w.memoValid {
			w.Matches += w.pageMatches[page]
			if fp := w.pageFlags[page]; fp != nil {
				if err := writeChunk(w.proc, w.flags.Add(off/64), fp); err != nil {
					return err
				}
			}
			page++
			continue
		}
		dirty := false
		matches := 0
		for i := range flagPage {
			flagPage[i] = 0
		}
		if a := w.anchor; a != nil {
			// The keys share a prefix and a length, so one scan for the
			// anchor replaces a scan per key; a position matches at most
			// one key, so per-position compare preserves the exact count.
			kl := len(w.keys[0])
			at := 0
			for {
				idx := bytes.Index(buf[at:n], a)
				if idx < 0 {
					break
				}
				pos := at + idx
				if pos+kl <= int(n) {
					for _, key := range w.keys {
						if bytes.Equal(buf[pos:pos+kl], key) {
							flagPage[pos/64] = 1
							matches++
							dirty = true
							break
						}
					}
				}
				at = pos + 1
			}
		} else {
			for _, key := range w.keys {
				at := 0
				for {
					idx := bytes.Index(buf[at:n], key)
					if idx < 0 {
						break
					}
					pos := at + idx
					flagPage[pos/64] = 1
					matches++
					dirty = true
					at = pos + 1
				}
			}
		}
		w.Matches += matches
		if dirty {
			if err := writeChunk(w.proc, w.flags.Add(off/64), flagPage[:(n+63)/64]); err != nil {
				return err
			}
		}
		if useMemo {
			w.pageMatches[page] = matches
			if dirty {
				w.pageFlags[page] = append([]byte(nil), flagPage[:(n+63)/64]...)
			}
		}
		page++
	}
	if useMemo {
		w.memoValid = true
	}
	return nil
}

// WorkingSet implements Workload.
func (w *StringMatch) WorkingSet() uint64 { return w.FileBytes + w.FileBytes/64 }
