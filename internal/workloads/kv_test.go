package workloads

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/sim"
)

// newTestProc boots a minimal stack and returns a process.
func newTestProc(t testing.TB) *guestos.Process {
	t.Helper()
	model := costmodel.Default()
	hyp := hypervisor.New(mem.NewPhysMem(0), model)
	vm, err := hyp.CreateVM()
	if err != nil {
		t.Fatalf("CreateVM: %v", err)
	}
	k := guestos.NewKernel(vm.VCPU, model)
	return k.Spawn("test")
}

// engines lists fresh instances of all five KV engines.
func engines() []KVEngine {
	return []KVEngine{
		&TinyDBM{},
		&StdHashDBM{Buckets: 257},
		&CacheDBM{Capacity: 100000},
		&StdTreeDBM{},
		&BabyDBM{},
	}
}

// TestKVEnginesAgainstReference drives every engine with a deterministic
// random mix of sets (with overwrites) and compares each Get against a
// host-side reference map.
func TestKVEnginesAgainstReference(t *testing.T) {
	for _, eng := range engines() {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			proc := newTestProc(t)
			rng := sim.NewRNG(7)
			if err := eng.Open(NewRegionAlloc(proc, false), rng, 4096); err != nil {
				t.Fatalf("Open: %v", err)
			}
			ref := make(map[uint64]uint64)
			for i := 0; i < 3000; i++ {
				key := rng.Uint64n(1024) + 1
				val := rng.Uint64()
				if err := eng.Set(key, val); err != nil {
					t.Fatalf("Set(%d): %v", key, err)
				}
				ref[key] = val
			}
			if got, want := eng.Count(), len(ref); got != want {
				t.Errorf("Count = %d, want %d", got, want)
			}
			for key, want := range ref {
				got, ok, err := eng.Get(key)
				if err != nil {
					t.Fatalf("Get(%d): %v", key, err)
				}
				if !ok || got != want {
					t.Errorf("Get(%d) = (%d,%v), want (%d,true)", key, got, ok, want)
				}
			}
			// Absent keys stay absent.
			for i := 0; i < 50; i++ {
				key := rng.Uint64n(1<<40) + 1<<41
				if _, ok, err := eng.Get(key); err != nil || ok {
					t.Errorf("Get(absent %d) = (_,%v,%v), want miss", key, ok, err)
				}
			}
		})
	}
}

// TestCacheDBMEviction verifies the LRU bound: capacity is respected and
// the most recently used keys survive.
func TestCacheDBMEviction(t *testing.T) {
	proc := newTestProc(t)
	rng := sim.NewRNG(9)
	d := &CacheDBM{Capacity: 8}
	if err := d.Open(NewRegionAlloc(proc, false), rng, 8); err != nil {
		t.Fatalf("Open: %v", err)
	}
	for k := uint64(1); k <= 16; k++ {
		if err := d.Set(k, k*10); err != nil {
			t.Fatalf("Set(%d): %v", k, err)
		}
	}
	if d.Count() != 8 {
		t.Errorf("Count = %d, want 8 (capacity)", d.Count())
	}
	if d.Evictions != 8 {
		t.Errorf("Evictions = %d, want 8", d.Evictions)
	}
	// Keys 9..16 are the most recent and must be present; 1..8 evicted.
	for k := uint64(9); k <= 16; k++ {
		if v, ok, err := d.Get(k); err != nil || !ok || v != k*10 {
			t.Errorf("Get(%d) = (%d,%v,%v), want hit", k, v, ok, err)
		}
	}
	for k := uint64(1); k <= 8; k++ {
		if _, ok, _ := d.Get(k); ok {
			t.Errorf("Get(%d) hit, want evicted", k)
		}
	}
}

// TestStdTreeOrdered verifies in-order iteration yields sorted keys.
func TestStdTreeOrdered(t *testing.T) {
	proc := newTestProc(t)
	rng := sim.NewRNG(11)
	d := &StdTreeDBM{}
	if err := d.Open(NewRegionAlloc(proc, false), rng, 2048); err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if err := d.Set(rng.Uint64n(10000)+1, uint64(i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	prev := uint64(0)
	n := 0
	err := d.Walk(func(k, v uint64) bool {
		if k <= prev {
			t.Errorf("Walk out of order: %d after %d", k, prev)
			return false
		}
		prev = k
		n++
		return true
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if n != d.Count() {
		t.Errorf("walked %d keys, Count = %d", n, d.Count())
	}
}

// TestBabyDepthGrows exercises B+ tree splits through the root.
func TestBabyDepthGrows(t *testing.T) {
	proc := newTestProc(t)
	rng := sim.NewRNG(13)
	d := &BabyDBM{}
	if err := d.Open(NewRegionAlloc(proc, false), rng, 1<<14); err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := uint64(1); i <= 5000; i++ {
		if err := d.Set(i, i^0xABCD); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
	}
	if d.Depth() < 3 {
		t.Errorf("Depth = %d, want >= 3 after 5000 sequential inserts", d.Depth())
	}
	for i := uint64(1); i <= 5000; i += 37 {
		if v, ok, err := d.Get(i); err != nil || !ok || v != i^0xABCD {
			t.Fatalf("Get(%d) = (%d,%v,%v)", i, v, ok, err)
		}
	}
}
