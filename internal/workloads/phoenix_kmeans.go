package workloads

import (
	"math"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// KMeans is Phoenix's k-means kernel: iteratively assign d-dimensional
// points to the nearest of k centroids and recompute the centroids. Points
// are read-only after setup; each Run (one Lloyd iteration) rewrites the
// assignment vector and the centroid matrix - a moderate, structured dirty
// set over a large read working set (Table III: -d/-c/-p up to 5K).
type KMeans struct {
	Points, Clusters, Dims int

	proc        *guestos.Process
	points      mem.GVA // Points x Dims float64
	centroids   mem.GVA // Clusters x Dims float64
	assignments mem.GVA // Points x u64
	ready       bool

	// Moved reports how many points changed cluster in the last Run.
	Moved int
}

// NewKMeans returns the kernel with n points, k clusters, d dimensions.
func NewKMeans(points, clusters, dims int) *KMeans {
	return &KMeans{Points: points, Clusters: clusters, Dims: dims}
}

// Name implements Workload.
func (w *KMeans) Name() string { return "phoenix/kmeans" }

// Setup implements Workload.
func (w *KMeans) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	var err error
	rowBytes := uint64(w.Dims) * 8
	if w.points, err = alloc.Alloc(uint64(w.Points) * rowBytes); err != nil {
		return err
	}
	if w.centroids, err = alloc.Alloc(uint64(w.Clusters) * rowBytes); err != nil {
		return err
	}
	if w.assignments, err = alloc.Alloc(uint64(w.Points) * 8); err != nil {
		return err
	}
	// Random points in [0,1)^d; first k points seed the centroids.
	row := make([]byte, rowBytes)
	for i := 0; i < w.Points; i++ {
		for j := 0; j < w.Dims; j++ {
			putU64(row, j*8, math.Float64bits(rng.Float64()))
		}
		if err := writeChunk(w.proc, w.points.Add(uint64(i)*rowBytes), row); err != nil {
			return err
		}
		if i < w.Clusters {
			if err := writeChunk(w.proc, w.centroids.Add(uint64(i)*rowBytes), row); err != nil {
				return err
			}
		}
	}
	w.ready = true
	return nil
}

// Run implements Workload: one Lloyd iteration.
func (w *KMeans) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	rowBytes := uint64(w.Dims) * 8
	// Load centroids.
	cent := make([][]float64, w.Clusters)
	row := make([]byte, rowBytes)
	for c := 0; c < w.Clusters; c++ {
		if err := readChunk(w.proc, w.centroids.Add(uint64(c)*rowBytes), row); err != nil {
			return err
		}
		cent[c] = make([]float64, w.Dims)
		for j := 0; j < w.Dims; j++ {
			cent[c][j] = math.Float64frombits(u64At(row, j*8))
		}
	}
	sums := make([][]float64, w.Clusters)
	counts := make([]int, w.Clusters)
	for c := range sums {
		sums[c] = make([]float64, w.Dims)
	}

	// Assignment pass.
	chargeFlops(w.proc, int64(w.Points)*int64(w.Clusters)*int64(w.Dims)*3)
	w.Moved = 0
	assignBuf := make([]byte, 8)
	for i := 0; i < w.Points; i++ {
		if err := readChunk(w.proc, w.points.Add(uint64(i)*rowBytes), row); err != nil {
			return err
		}
		best, bestDist := 0, math.MaxFloat64
		for c := 0; c < w.Clusters; c++ {
			var d2 float64
			for j := 0; j < w.Dims; j++ {
				x := math.Float64frombits(u64At(row, j*8)) - cent[c][j]
				d2 += x * x
			}
			if d2 < bestDist {
				best, bestDist = c, d2
			}
		}
		prev, err := w.proc.ReadU64(w.assignments.Add(uint64(i) * 8))
		if err != nil {
			return err
		}
		if prev != uint64(best)+1 {
			w.Moved++
			putU64(assignBuf, 0, uint64(best)+1)
			if err := writeChunk(w.proc, w.assignments.Add(uint64(i)*8), assignBuf); err != nil {
				return err
			}
		}
		for j := 0; j < w.Dims; j++ {
			sums[best][j] += math.Float64frombits(u64At(row, j*8))
		}
		counts[best]++
	}

	// Update pass: rewrite every centroid.
	for c := 0; c < w.Clusters; c++ {
		for j := 0; j < w.Dims; j++ {
			v := cent[c][j]
			if counts[c] > 0 {
				v = sums[c][j] / float64(counts[c])
			}
			putU64(row, j*8, math.Float64bits(v))
		}
		if err := writeChunk(w.proc, w.centroids.Add(uint64(c)*rowBytes), row); err != nil {
			return err
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *KMeans) WorkingSet() uint64 {
	return uint64(w.Points)*uint64(w.Dims)*8 + uint64(w.Clusters)*uint64(w.Dims)*8 + uint64(w.Points)*8
}
