package workloads

import (
	"testing"

	"repro/internal/sim"
)

// TestAllWorkloadsRun smoke-tests every registered workload at every size:
// Setup then two Runs must succeed (Run must be repeatable for pre-copy
// rounds).
func TestAllWorkloadsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := New(name, Small, 1)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			proc := newTestProc(t)
			rng := sim.NewRNG(1)
			if err := w.Setup(NewRegionAlloc(proc, false), rng); err != nil {
				t.Fatalf("Setup: %v", err)
			}
			if err := w.Run(); err != nil {
				t.Fatalf("Run 1: %v", err)
			}
			if err := w.Run(); err != nil {
				t.Fatalf("Run 2: %v", err)
			}
			if w.WorkingSet() == 0 {
				t.Error("WorkingSet() == 0")
			}
		})
	}
}

// TestRunBeforeSetupFails checks the uniform misuse guard.
func TestRunBeforeSetupFails(t *testing.T) {
	w, err := New("histogram", Small, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.Run(); err == nil {
		t.Error("Run before Setup succeeded, want error")
	}
}

// TestUnknownWorkload checks the registry error path.
func TestUnknownWorkload(t *testing.T) {
	if _, err := New("no-such-app", Small, 1); err == nil {
		t.Error("New(no-such-app) succeeded, want error")
	}
}

// TestHistogramCounts verifies the kernel's result: totals must sum to the
// number of pixels scanned.
func TestHistogramCounts(t *testing.T) {
	w := NewHistogram(1 << 16)
	proc := newTestProc(t)
	if err := w.Setup(NewRegionAlloc(proc, false), sim.NewRNG(2)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sum uint64
	for v := 0; v < 256; v++ {
		sum += w.Totals[0][v]
	}
	// Pixels per page: floor(4096/3) = 1365; 16 pages.
	if want := uint64(16 * 1365); sum != want {
		t.Errorf("channel-0 total = %d, want %d", sum, want)
	}
}

// TestKMeansConverges verifies that repeated Lloyd iterations reduce the
// number of reassigned points.
func TestKMeansConverges(t *testing.T) {
	w := NewKMeans(500, 8, 8)
	proc := newTestProc(t)
	if err := w.Setup(NewRegionAlloc(proc, false), sim.NewRNG(3)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run 1: %v", err)
	}
	first := w.Moved
	for i := 0; i < 6; i++ {
		if err := w.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if w.Moved >= first {
		t.Errorf("Moved after 7 iters = %d, want < first iter's %d", w.Moved, first)
	}
}

// TestStringMatchFindsPlantedKeys verifies planted keys are found.
func TestStringMatchFindsPlantedKeys(t *testing.T) {
	w := NewStringMatch(1 << 16)
	proc := newTestProc(t)
	if err := w.Setup(NewRegionAlloc(proc, false), sim.NewRNG(4)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One key planted every 2 KiB: 16 pages * 2 = 32 plants.
	if w.Matches < 30 {
		t.Errorf("Matches = %d, want >= 30", w.Matches)
	}
}

// TestWordCountCounts verifies token counting over guest memory.
func TestWordCountCounts(t *testing.T) {
	w := NewWordCount(1<<15, 512)
	proc := newTestProc(t)
	if err := w.Setup(NewRegionAlloc(proc, false), sim.NewRNG(5)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Words average ~7 bytes + space: expect roughly fileBytes/8 tokens.
	if w.Words < 2000 {
		t.Errorf("Words = %d, want >= 2000", w.Words)
	}
}

// TestMatrixMultiplyChecksum pins the deterministic result.
func TestMatrixMultiplyChecksum(t *testing.T) {
	w := NewMatrixMultiply(32)
	proc := newTestProc(t)
	if err := w.Setup(NewRegionAlloc(proc, false), sim.NewRNG(6)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	first := w.Checksum
	if first == 0 {
		t.Fatal("checksum is zero")
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	if w.Checksum != first {
		t.Errorf("checksum changed across runs: %v vs %v", w.Checksum, first)
	}
}
