package workloads

import (
	"fmt"
	"math"

	"repro/internal/guestos"
	"repro/internal/sim"

	"repro/internal/mem"
)

// MatrixMultiply is Phoenix's matrix-multiply kernel: C = A x B over n x n
// float64 matrices. A and B are read-only after setup; each Run rewrites
// all of C - a write working set of n*n*8 bytes streamed row by row
// (Table III: 500-2K).
type MatrixMultiply struct {
	N int

	proc    *guestos.Process
	a, b, c mem.GVA
	ready   bool

	// Checksum is the sum of C's entries after the last Run.
	Checksum float64
}

// NewMatrixMultiply returns the kernel for n x n matrices.
func NewMatrixMultiply(n int) *MatrixMultiply { return &MatrixMultiply{N: n} }

// Name implements Workload.
func (w *MatrixMultiply) Name() string { return "phoenix/matrix-multiply" }

// Setup implements Workload.
func (w *MatrixMultiply) Setup(alloc Allocator, rng *sim.RNG) error {
	if w.N <= 0 {
		return fmt.Errorf("matmul: bad dimension %d", w.N)
	}
	w.proc = alloc.Proc()
	bytes := uint64(w.N) * uint64(w.N) * 8
	var err error
	if w.a, err = alloc.Alloc(bytes); err != nil {
		return err
	}
	if w.b, err = alloc.Alloc(bytes); err != nil {
		return err
	}
	if w.c, err = alloc.Alloc(bytes); err != nil {
		return err
	}
	row := make([]byte, w.N*8)
	for i := 0; i < w.N; i++ {
		for j := 0; j < w.N; j++ {
			putU64(row, j*8, math.Float64bits(rng.Float64()))
		}
		if err := writeChunk(w.proc, w.a.Add(uint64(i)*uint64(w.N)*8), row); err != nil {
			return err
		}
		for j := 0; j < w.N; j++ {
			putU64(row, j*8, math.Float64bits(rng.Float64()))
		}
		if err := writeChunk(w.proc, w.b.Add(uint64(i)*uint64(w.N)*8), row); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// Run implements Workload: one full multiplication, writing C row by row.
func (w *MatrixMultiply) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	n := w.N
	rowBytes := uint64(n) * 8
	// Load B once (column access pattern), row-major into host memory.
	bm := make([]float64, n*n)
	row := make([]byte, rowBytes)
	for i := 0; i < n; i++ {
		if err := readChunk(w.proc, w.b.Add(uint64(i)*rowBytes), row); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			bm[i*n+j] = math.Float64frombits(u64At(row, j*8))
		}
	}
	w.Checksum = 0
	chargeFlops(w.proc, 2*int64(n)*int64(n)*int64(n))
	arow := make([]float64, n)
	crow := make([]byte, rowBytes)
	for i := 0; i < n; i++ {
		if err := readChunk(w.proc, w.a.Add(uint64(i)*rowBytes), row); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			arow[j] = math.Float64frombits(u64At(row, j*8))
		}
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += arow[k] * bm[k*n+j]
			}
			putU64(crow, j*8, math.Float64bits(sum))
			w.Checksum += sum
		}
		if err := writeChunk(w.proc, w.c.Add(uint64(i)*rowBytes), crow); err != nil {
			return err
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *MatrixMultiply) WorkingSet() uint64 { return 3 * uint64(w.N) * uint64(w.N) * 8 }
