package workloads

import (
	"fmt"

	"repro/internal/gheap"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// KVEngine is one tkrzw-style in-memory database engine storing 64-bit
// keys and values in guest memory. The five engines mirror tkrzw's
// on-memory DBMs: tiny (open-addressing hash), stdhash (chained hash),
// cache (LRU-bounded hash), stdtree (ordered treap), baby (B+ tree).
type KVEngine interface {
	Name() string
	// Open prepares the engine for about capacity records.
	Open(alloc Allocator, rng *sim.RNG, capacity int) error
	Set(key, value uint64) error
	Get(key uint64) (uint64, bool, error)
	// Count returns the number of live records.
	Count() int
}

// Tkrzw adapts a KVEngine to the Workload interface: each Run injects a
// batch of set requests with deterministic pseudo-random keys, exactly the
// paper's "we focused on the five in-memory engines and we injected set
// requests" (§VI-A). Threads multiplies the batch, standing in for the
// -threads parameter of Table III on our single-vCPU guest.
type Tkrzw struct {
	Engine  KVEngine
	Iters   int // set requests per Run
	Threads int
	KeySpan uint64 // keys drawn from [0, KeySpan)

	rng   *sim.RNG
	ready bool
}

// NewTkrzw returns the injection workload around an engine.
func NewTkrzw(engine KVEngine, iters, threads int, keySpan uint64) *Tkrzw {
	if threads <= 0 {
		threads = 1
	}
	if keySpan == 0 {
		keySpan = uint64(iters) * 4
	}
	return &Tkrzw{Engine: engine, Iters: iters, Threads: threads, KeySpan: keySpan}
}

// Name implements Workload.
func (w *Tkrzw) Name() string { return "tkrzw/" + w.Engine.Name() }

// Setup implements Workload.
func (w *Tkrzw) Setup(alloc Allocator, rng *sim.RNG) error {
	w.rng = rng
	// Repeated Runs keep inserting fresh keys from KeySpan; size the
	// engine for the whole key space, not just one batch.
	capacity := int(w.KeySpan)
	if batch := w.Iters * w.Threads; capacity < batch {
		capacity = batch
	}
	if err := w.Engine.Open(alloc, rng, capacity); err != nil {
		return err
	}
	w.ready = true
	return nil
}

// Run implements Workload: inject Iters*Threads set requests.
func (w *Tkrzw) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	total := w.Iters * w.Threads
	for i := 0; i < total; i++ {
		key := w.rng.Uint64n(w.KeySpan)
		if err := w.Engine.Set(key, key^0xDEADBEEF); err != nil {
			return fmt.Errorf("%s: set %d: %w", w.Name(), key, err)
		}
	}
	return nil
}

// WorkingSet implements Workload (approximate: records * slot size).
func (w *Tkrzw) WorkingSet() uint64 { return uint64(w.Iters*w.Threads) * 32 }

// --- tiny: open-addressing hash over a flat region ------------------------------

// TinyDBM mirrors tkrzw's TinyDBM: a fixed bucket array with linear
// probing; each slot is 16 bytes (key+1, value). -buckets of Table III.
type TinyDBM struct {
	Buckets uint64

	proc  *guestos.Process
	base  mem.GVA
	count int
}

// Open implements KVEngine.
func (d *TinyDBM) Open(alloc Allocator, rng *sim.RNG, capacity int) error {
	if d.Buckets == 0 {
		d.Buckets = uint64(capacity) * 2
	}
	d.proc = alloc.Proc()
	base, err := alloc.Alloc(d.Buckets * 16)
	if err != nil {
		return err
	}
	d.base = base
	return nil
}

// Name implements KVEngine.
func (d *TinyDBM) Name() string { return "tiny" }

// Count implements KVEngine.
func (d *TinyDBM) Count() int { return d.count }

// slot reads bucket i.
func (d *TinyDBM) slot(i uint64) (k, v uint64, err error) {
	k, err = d.proc.ReadU64(d.base.Add(i * 16))
	if err != nil {
		return
	}
	v, err = d.proc.ReadU64(d.base.Add(i*16 + 8))
	return
}

// Set implements KVEngine.
func (d *TinyDBM) Set(key, value uint64) error {
	h := mix64(key) % d.Buckets
	for probe := uint64(0); probe < d.Buckets; probe++ {
		i := (h + probe) % d.Buckets
		k, _, err := d.slot(i)
		if err != nil {
			return err
		}
		if k == 0 || k == key+1 {
			if k == 0 {
				d.count++
				if err := d.proc.WriteU64(d.base.Add(i*16), key+1); err != nil {
					return err
				}
			}
			return d.proc.WriteU64(d.base.Add(i*16+8), value)
		}
	}
	return fmt.Errorf("tiny: table full (%d buckets)", d.Buckets)
}

// Get implements KVEngine.
func (d *TinyDBM) Get(key uint64) (uint64, bool, error) {
	h := mix64(key) % d.Buckets
	for probe := uint64(0); probe < d.Buckets; probe++ {
		i := (h + probe) % d.Buckets
		k, v, err := d.slot(i)
		if err != nil {
			return 0, false, err
		}
		if k == 0 {
			return 0, false, nil
		}
		if k == key+1 {
			return v, true, nil
		}
	}
	return 0, false, nil
}

// mix64 is a Stafford finalizer, used as the engines' hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// --- stdhash: chained hash with heap-allocated nodes -----------------------------

// StdHashDBM mirrors tkrzw's StdHashDBM (std::unordered_map): a bucket
// array of chain heads plus 24-byte chain nodes {key, value, next} from
// the guest heap.
type StdHashDBM struct {
	Buckets uint64

	proc  *guestos.Process
	heap  *gheap.Heap
	heads mem.GVA
	count int
}

// Name implements KVEngine.
func (d *StdHashDBM) Name() string { return "stdhash" }

// Count implements KVEngine.
func (d *StdHashDBM) Count() int { return d.count }

// Open implements KVEngine.
func (d *StdHashDBM) Open(alloc Allocator, rng *sim.RNG, capacity int) error {
	if d.Buckets == 0 {
		d.Buckets = uint64(capacity)
	}
	d.proc = alloc.Proc()
	heads, err := alloc.Alloc(d.Buckets * 8)
	if err != nil {
		return err
	}
	d.heads = heads
	heap, err := gheap.New(d.proc, uint64(capacity+16)*32+1<<16, false)
	if err != nil {
		return err
	}
	d.heap = heap
	return nil
}

// Set implements KVEngine.
func (d *StdHashDBM) Set(key, value uint64) error {
	b := mix64(key) % d.Buckets
	headAddr := d.heads.Add(b * 8)
	node, err := d.proc.ReadU64(headAddr)
	if err != nil {
		return err
	}
	for node != 0 {
		k, err := d.proc.ReadU64(mem.GVA(node))
		if err != nil {
			return err
		}
		if k == key {
			return d.proc.WriteU64(mem.GVA(node).Add(8), value)
		}
		node, err = d.proc.ReadU64(mem.GVA(node).Add(16))
		if err != nil {
			return err
		}
	}
	// Prepend a fresh node.
	addr, err := d.heap.Alloc(24)
	if err != nil {
		return err
	}
	head, err := d.proc.ReadU64(headAddr)
	if err != nil {
		return err
	}
	if err := d.proc.WriteU64(addr, key); err != nil {
		return err
	}
	if err := d.proc.WriteU64(addr.Add(8), value); err != nil {
		return err
	}
	if err := d.proc.WriteU64(addr.Add(16), head); err != nil {
		return err
	}
	d.count++
	return d.proc.WriteU64(headAddr, uint64(addr))
}

// Get implements KVEngine.
func (d *StdHashDBM) Get(key uint64) (uint64, bool, error) {
	b := mix64(key) % d.Buckets
	node, err := d.proc.ReadU64(d.heads.Add(b * 8))
	if err != nil {
		return 0, false, err
	}
	for node != 0 {
		k, err := d.proc.ReadU64(mem.GVA(node))
		if err != nil {
			return 0, false, err
		}
		if k == key {
			v, err := d.proc.ReadU64(mem.GVA(node).Add(8))
			return v, err == nil, err
		}
		node, err = d.proc.ReadU64(mem.GVA(node).Add(16))
		if err != nil {
			return 0, false, err
		}
	}
	return 0, false, nil
}
