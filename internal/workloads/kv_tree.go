package workloads

import (
	"repro/internal/gheap"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// StdTreeDBM mirrors tkrzw's StdTreeDBM (std::map): an ordered dictionary.
// We implement it as a treap - a binary search tree balanced by random
// heap priorities - whose rotations rewrite parent/child links in guest
// memory, giving the pointer-chasing dirty pattern of a red-black tree at
// a fraction of the code. Node layout:
//
//	offset 0:  key
//	offset 8:  value
//	offset 16: priority
//	offset 24: left child (guest address, 0 = nil)
//	offset 32: right child
type StdTreeDBM struct {
	proc *guestos.Process
	heap *gheap.Heap
	rng  *sim.RNG
	// rootCell is a one-word guest allocation holding the root pointer,
	// so the whole structure lives in tracked memory.
	rootCell mem.GVA
	count    int
}

const treapNodeBytes = 40

// Name implements KVEngine.
func (d *StdTreeDBM) Name() string { return "stdtree" }

// Count implements KVEngine.
func (d *StdTreeDBM) Count() int { return d.count }

// Open implements KVEngine.
func (d *StdTreeDBM) Open(alloc Allocator, rng *sim.RNG, capacity int) error {
	d.proc = alloc.Proc()
	d.rng = rng
	cell, err := alloc.Alloc(8)
	if err != nil {
		return err
	}
	d.rootCell = cell
	if err := d.proc.WriteU64(cell, 0); err != nil {
		return err
	}
	heap, err := gheap.New(d.proc, uint64(capacity+16)*treapNodeBytes+1<<16, false)
	if err != nil {
		return err
	}
	d.heap = heap
	return nil
}

func (d *StdTreeDBM) nread(addr uint64, off uint64) (uint64, error) {
	return d.proc.ReadU64(mem.GVA(addr).Add(off))
}

func (d *StdTreeDBM) nwrite(addr uint64, off uint64, v uint64) error {
	return d.proc.WriteU64(mem.GVA(addr).Add(off), v)
}

// insert adds (key,value) under root and returns the new subtree root.
func (d *StdTreeDBM) insert(root uint64, key, value uint64) (uint64, error) {
	if root == 0 {
		addr, err := d.heap.Alloc(treapNodeBytes)
		if err != nil {
			return 0, err
		}
		node := uint64(addr)
		if err := d.nwrite(node, 0, key); err != nil {
			return 0, err
		}
		if err := d.nwrite(node, 8, value); err != nil {
			return 0, err
		}
		if err := d.nwrite(node, 16, d.rng.Uint64()); err != nil {
			return 0, err
		}
		if err := d.nwrite(node, 24, 0); err != nil {
			return 0, err
		}
		if err := d.nwrite(node, 32, 0); err != nil {
			return 0, err
		}
		d.count++
		return node, nil
	}
	k, err := d.nread(root, 0)
	if err != nil {
		return 0, err
	}
	switch {
	case key == k:
		return root, d.nwrite(root, 8, value)
	case key < k:
		left, err := d.nread(root, 24)
		if err != nil {
			return 0, err
		}
		newLeft, err := d.insert(left, key, value)
		if err != nil {
			return 0, err
		}
		if newLeft != left {
			if err := d.nwrite(root, 24, newLeft); err != nil {
				return 0, err
			}
		}
		// Heap property: rotate right if the child outranks the root.
		lp, err := d.nread(newLeft, 16)
		if err != nil {
			return 0, err
		}
		rp, err := d.nread(root, 16)
		if err != nil {
			return 0, err
		}
		if lp > rp {
			return d.rotateRight(root, newLeft)
		}
		return root, nil
	default:
		right, err := d.nread(root, 32)
		if err != nil {
			return 0, err
		}
		newRight, err := d.insert(right, key, value)
		if err != nil {
			return 0, err
		}
		if newRight != right {
			if err := d.nwrite(root, 32, newRight); err != nil {
				return 0, err
			}
		}
		rp, err := d.nread(newRight, 16)
		if err != nil {
			return 0, err
		}
		pp, err := d.nread(root, 16)
		if err != nil {
			return 0, err
		}
		if rp > pp {
			return d.rotateLeft(root, newRight)
		}
		return root, nil
	}
}

// rotateRight lifts left over root.
func (d *StdTreeDBM) rotateRight(root, left uint64) (uint64, error) {
	lr, err := d.nread(left, 32)
	if err != nil {
		return 0, err
	}
	if err := d.nwrite(root, 24, lr); err != nil {
		return 0, err
	}
	if err := d.nwrite(left, 32, root); err != nil {
		return 0, err
	}
	return left, nil
}

// rotateLeft lifts right over root.
func (d *StdTreeDBM) rotateLeft(root, right uint64) (uint64, error) {
	rl, err := d.nread(right, 24)
	if err != nil {
		return 0, err
	}
	if err := d.nwrite(root, 32, rl); err != nil {
		return 0, err
	}
	if err := d.nwrite(right, 24, root); err != nil {
		return 0, err
	}
	return right, nil
}

// Set implements KVEngine.
func (d *StdTreeDBM) Set(key, value uint64) error {
	root, err := d.proc.ReadU64(d.rootCell)
	if err != nil {
		return err
	}
	newRoot, err := d.insert(root, key, value)
	if err != nil {
		return err
	}
	if newRoot != root {
		return d.proc.WriteU64(d.rootCell, newRoot)
	}
	return nil
}

// Get implements KVEngine.
func (d *StdTreeDBM) Get(key uint64) (uint64, bool, error) {
	node, err := d.proc.ReadU64(d.rootCell)
	if err != nil {
		return 0, false, err
	}
	for node != 0 {
		k, err := d.nread(node, 0)
		if err != nil {
			return 0, false, err
		}
		switch {
		case key == k:
			v, err := d.nread(node, 8)
			return v, err == nil, err
		case key < k:
			node, err = d.nread(node, 24)
		default:
			node, err = d.nread(node, 32)
		}
		if err != nil {
			return 0, false, err
		}
	}
	return 0, false, nil
}

// Walk visits keys in order (validation helper).
func (d *StdTreeDBM) Walk(fn func(key, value uint64) bool) error {
	root, err := d.proc.ReadU64(d.rootCell)
	if err != nil {
		return err
	}
	_, err = d.walk(root, fn)
	return err
}

func (d *StdTreeDBM) walk(node uint64, fn func(key, value uint64) bool) (bool, error) {
	if node == 0 {
		return true, nil
	}
	left, err := d.nread(node, 24)
	if err != nil {
		return false, err
	}
	if cont, err := d.walk(left, fn); err != nil || !cont {
		return cont, err
	}
	k, err := d.nread(node, 0)
	if err != nil {
		return false, err
	}
	v, err := d.nread(node, 8)
	if err != nil {
		return false, err
	}
	if !fn(k, v) {
		return false, nil
	}
	right, err := d.nread(node, 32)
	if err != nil {
		return false, err
	}
	return d.walk(right, fn)
}
