package workloads

import (
	"fmt"

	"repro/internal/boehmgc"
	"repro/internal/sim"
)

// GCBench is the classic Boehm/Ellis/Kovac garbage collection benchmark
// the paper uses as its GC microbenchmark: build a "stretch" tree to size
// the heap, keep a long-lived tree and a large array alive, then
// repeatedly build-and-drop temporary binary trees of increasing depth.
//
// Table III parameterizes it as (array size, long-lived depth, stretch
// depth); e.g. config Small is (500K, 16, 18).
type GCBench struct {
	ArrayBytes   uint64
	LongLived    int // depth of the long-lived tree
	StretchDepth int
	MinDepth     int // temporary tree depths iterate MinDepth..StretchDepth-2 step 2

	gc        *boehmgc.GC
	longLived boehmgc.Object
	array     boehmgc.Object
	ready     bool
}

// NewGCBench returns the benchmark with the given Table III parameters.
func NewGCBench(arrayBytes uint64, longLived, stretch int) *GCBench {
	return &GCBench{ArrayBytes: arrayBytes, LongLived: longLived, StretchDepth: stretch, MinDepth: 4}
}

// Name implements the workload naming convention.
func (w *GCBench) Name() string { return "gcbench" }

// SetupGC prepares the benchmark on a collector. GCBench allocates
// pointered objects, so it binds to the GC directly rather than through
// the data Allocator.
func (w *GCBench) SetupGC(gc *boehmgc.GC, rng *sim.RNG) error {
	w.gc = gc

	// Stretch the heap with a full tree of StretchDepth, then drop it.
	stretch, err := w.makeTree(w.StretchDepth)
	if err != nil {
		return fmt.Errorf("gcbench: stretch tree: %w", err)
	}
	gc.AddRoot(stretch)
	gc.RemoveRoot(stretch)

	// Long-lived structures survive all collections.
	w.longLived, err = w.makeTree(w.LongLived)
	if err != nil {
		return fmt.Errorf("gcbench: long-lived tree: %w", err)
	}
	gc.AddRoot(w.longLived)

	w.array, err = gc.Alloc(w.ArrayBytes, 0)
	if err != nil {
		return fmt.Errorf("gcbench: array: %w", err)
	}
	gc.AddRoot(w.array)
	// Touch the array like the original benchmark does.
	for off := uint64(0); off+8 <= w.ArrayBytes; off += 512 {
		if err := gc.SetData(w.array, off, off); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// Run performs one round: for each depth, build and drop temporary trees,
// then mutate part of the long-lived tree (dirtying its pages, which is
// what the incremental GC must notice).
func (w *GCBench) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	for depth := w.MinDepth; depth <= w.StretchDepth-2; depth += 2 {
		tmp, err := w.makeTree(depth)
		if err != nil {
			return fmt.Errorf("gcbench: depth %d: %w", depth, err)
		}
		// Temporary tree is dropped immediately (garbage).
		_ = tmp
	}
	// Mutate the long-lived tree's top levels.
	node := w.longLived
	for i := 0; i < w.LongLived/2 && !node.IsNil(); i++ {
		if err := w.gc.SetData(node, 16, uint64(i)); err != nil {
			return err
		}
		next, err := w.gc.GetPtr(node, 0)
		if err != nil {
			return err
		}
		node = next
	}
	return nil
}

// treeNode layout: 2 pointer slots (left, right) + one data word.
const treeNodeBytes = 3 * 8

// makeTree builds a full binary tree of the given depth bottom-up.
func (w *GCBench) makeTree(depth int) (boehmgc.Object, error) {
	if depth <= 0 {
		return w.gc.Alloc(treeNodeBytes, 2)
	}
	left, err := w.makeTree(depth - 1)
	if err != nil {
		return boehmgc.Object{}, err
	}
	right, err := w.makeTree(depth - 1)
	if err != nil {
		return boehmgc.Object{}, err
	}
	node, err := w.gc.Alloc(treeNodeBytes, 2)
	if err != nil {
		return boehmgc.Object{}, err
	}
	if err := w.gc.SetPtr(node, 0, left); err != nil {
		return boehmgc.Object{}, err
	}
	if err := w.gc.SetPtr(node, 1, right); err != nil {
		return boehmgc.Object{}, err
	}
	return node, nil
}

// CheckTree verifies the long-lived tree is intact (depth reachable), the
// correctness witness that GC never freed live nodes.
func (w *GCBench) CheckTree() error {
	var walk func(node boehmgc.Object, depth int) error
	walk = func(node boehmgc.Object, depth int) error {
		if depth == 0 {
			return nil
		}
		if node.IsNil() {
			return fmt.Errorf("gcbench: long-lived tree truncated at depth %d", depth)
		}
		left, err := w.gc.GetPtr(node, 0)
		if err != nil {
			return err
		}
		right, err := w.gc.GetPtr(node, 1)
		if err != nil {
			return err
		}
		if err := walk(left, depth-1); err != nil {
			return err
		}
		return walk(right, depth-1)
	}
	return walk(w.longLived, w.LongLived)
}
