package workloads

import (
	"math"

	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PCA is Phoenix's principal component analysis kernel: compute the mean
// vector and the covariance matrix of an r x c data matrix. The paper's
// CRIU experiment finds pca the worst-case tracked app (102 % overhead
// under /proc, 114 % under SPML, 7 % under EPML): its covariance writes
// touch a c x c output that is large relative to its runtime.
type PCA struct {
	Rows, Cols int

	proc  *guestos.Process
	data  mem.GVA // Rows x Cols float64
	means mem.GVA // Cols float64
	cov   mem.GVA // Cols x Cols float64
	ready bool

	// Trace is the covariance trace after the last Run (verification).
	Trace float64
}

// NewPCA returns the kernel for an r x c matrix (Table III: -r/-c up to 10K,
// -s 200 sampled covariance columns; we compute a banded covariance to keep
// the same write pattern at tractable cost).
func NewPCA(rows, cols int) *PCA { return &PCA{Rows: rows, Cols: cols} }

// Name implements Workload.
func (w *PCA) Name() string { return "phoenix/pca" }

// Setup implements Workload.
func (w *PCA) Setup(alloc Allocator, rng *sim.RNG) error {
	w.proc = alloc.Proc()
	var err error
	if w.data, err = alloc.Alloc(uint64(w.Rows) * uint64(w.Cols) * 8); err != nil {
		return err
	}
	if w.means, err = alloc.Alloc(uint64(w.Cols) * 8); err != nil {
		return err
	}
	if w.cov, err = alloc.Alloc(uint64(w.Cols) * uint64(w.Cols) * 8); err != nil {
		return err
	}
	row := make([]byte, w.Cols*8)
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			putU64(row, j*8, math.Float64bits(rng.Float64()*2-1))
		}
		if err := writeChunk(w.proc, w.data.Add(uint64(i)*uint64(w.Cols)*8), row); err != nil {
			return err
		}
	}
	w.ready = true
	return nil
}

// covBand bounds how far off the diagonal covariance entries are computed;
// Phoenix's -s parameter similarly subsamples the covariance computation.
const covBand = 16

// Run implements Workload: means pass, then banded covariance pass writing
// every covariance row.
func (w *PCA) Run() error {
	if err := checkSetup(w.Name(), w.ready); err != nil {
		return err
	}
	r, c := w.Rows, w.Cols
	rowBytes := uint64(c) * 8
	matrix := make([]float64, r*c)
	row := make([]byte, rowBytes)
	for i := 0; i < r; i++ {
		if err := readChunk(w.proc, w.data.Add(uint64(i)*rowBytes), row); err != nil {
			return err
		}
		for j := 0; j < c; j++ {
			matrix[i*c+j] = math.Float64frombits(u64At(row, j*8))
		}
	}
	// Mean vector.
	means := make([]float64, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			means[j] += matrix[i*c+j]
		}
	}
	out := make([]byte, rowBytes)
	for j := 0; j < c; j++ {
		means[j] /= float64(r)
		putU64(out, j*8, math.Float64bits(means[j]))
	}
	if err := writeChunk(w.proc, w.means, out); err != nil {
		return err
	}
	// Banded covariance, one written row per column.
	chargeFlops(w.proc, int64(r)*int64(c)+int64(r)*int64(c)*(2*covBand+1)*3)
	w.Trace = 0
	for j := 0; j < c; j++ {
		for k := 0; k < c; k++ {
			putU64(out, k*8, 0)
		}
		lo, hi := j-covBand, j+covBand
		if lo < 0 {
			lo = 0
		}
		if hi >= c {
			hi = c - 1
		}
		for k := lo; k <= hi; k++ {
			var s float64
			for i := 0; i < r; i++ {
				s += (matrix[i*c+j] - means[j]) * (matrix[i*c+k] - means[k])
			}
			s /= float64(r - 1)
			putU64(out, k*8, math.Float64bits(s))
			if k == j {
				w.Trace += s
			}
		}
		if err := writeChunk(w.proc, w.cov.Add(uint64(j)*rowBytes), out); err != nil {
			return err
		}
	}
	return nil
}

// WorkingSet implements Workload.
func (w *PCA) WorkingSet() uint64 {
	return uint64(w.Rows)*uint64(w.Cols)*8 + uint64(w.Cols)*8 + uint64(w.Cols)*uint64(w.Cols)*8
}
