package trace

import "sort"

// Shard is a Tracer bound to one cell of a parallel experiment grid. Like
// PML giving each vCPU its own 512-entry buffer so logging scales with
// cores, sharding gives each grid cell its own single-goroutine tracer so
// instrumented sweeps scale with workers: every cell records into its
// shard on the worker goroutine that runs it, and after the fan-out
// barrier Merge folds the shards into one destination tracer as a single
// deterministic stream.
//
// A Shard embeds its Tracer, so instrumentation sites hold it exactly like
// a plain *Tracer. Records are retained in memory (not streamed) until
// Merge runs; a sweep tracing high-volume kinds should bound the mask the
// same way a streaming run would.
type Shard struct {
	*Tracer
	grid int
	mem  Memory
}

// NewShard returns a shard for grid cell `grid` recording with the given
// enable mask (normally the destination tracer's mask).
func NewShard(grid int, mask uint64) *Shard {
	s := &Shard{grid: grid}
	s.Tracer = New(&s.mem, 0)
	s.Tracer.SetMask(mask)
	return s
}

// Grid returns the grid index this shard was created for.
func (s *Shard) Grid() int { return s.grid }

// Records flushes the shard's ring and returns its records in emission
// order. Nil-receiver safe.
func (s *Shard) Records() []Record {
	if s == nil {
		return nil
	}
	_ = s.Flush()
	return s.mem.Records()
}

// Merge folds the shards' records into dst as one stream ordered by
// (virtual timestamp, grid index, emission sequence). The key is total -
// (grid, seq) uniquely identifies a record - and every component is a
// deterministic function of the cell's seeded simulation, never of which
// worker ran the cell or when. A Workers=8 sweep therefore merges to the
// byte-identical stream a Workers=1 sweep produces.
//
// Merge emits on the caller's goroutine; call it only after the fan-out
// barrier (all workers joined). Nil dst and nil shards are no-ops.
func Merge(dst *Tracer, shards ...*Shard) {
	if dst == nil {
		return
	}
	type item struct {
		rec  Record
		grid int
		seq  int
	}
	var items []item
	for _, s := range shards {
		if s == nil {
			continue
		}
		for seq, rec := range s.Records() {
			items = append(items, item{rec: rec, grid: s.grid, seq: seq})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := &items[i], &items[j]
		if a.rec.TS != b.rec.TS {
			return a.rec.TS < b.rec.TS
		}
		if a.grid != b.grid {
			return a.grid < b.grid
		}
		return a.seq < b.seq
	})
	for i := range items {
		dst.Emit(items[i].rec)
	}
}
