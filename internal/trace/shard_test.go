package trace

import (
	"errors"
	"testing"
)

func TestMergeOrdersByTSGridSeq(t *testing.T) {
	// Shard 1 holds an envelope kind emitted after an inner event with an
	// earlier start TS - shard streams are not TS-sorted, so Merge must
	// fully sort, not just interleave.
	s0 := NewShard(0, AllKinds)
	s0.Emit(Record{TS: 10, Kind: KindVMExit, Arg: 1})
	s0.Emit(Record{TS: 30, Kind: KindVMExit, Arg: 2})
	s1 := NewShard(1, AllKinds)
	s1.Emit(Record{TS: 20, Kind: KindPMLDrain, Arg: 3})
	s1.Emit(Record{TS: 10, Kind: KindHypercall, Arg: 4}) // envelope: earlier TS, later seq

	var mem Memory
	dst := New(&mem, 0)
	Merge(dst, s1, s0) // shard argument order must not matter
	if err := dst.Flush(); err != nil {
		t.Fatal(err)
	}

	var gotArgs []int64
	for _, r := range mem.Records() {
		gotArgs = append(gotArgs, r.Arg)
	}
	// TS 10: grid 0 (arg 1) before grid 1 (arg 4); then TS 20 (arg 3), TS 30 (arg 2).
	want := []int64{1, 4, 3, 2}
	if len(gotArgs) != len(want) {
		t.Fatalf("merged args = %v, want %v", gotArgs, want)
	}
	for i := range want {
		if gotArgs[i] != want[i] {
			t.Fatalf("merged args = %v, want %v", gotArgs, want)
		}
	}
	if got := dst.Emitted(); got != 4 {
		t.Errorf("dst emitted = %d, want 4", got)
	}
}

func TestMergeSeqBreaksTiesWithinShard(t *testing.T) {
	s := NewShard(3, AllKinds)
	for i := int64(0); i < 5; i++ {
		s.Emit(Record{TS: 100, Arg: i}) // all tied on (TS, grid)
	}
	var mem Memory
	dst := New(&mem, 0)
	Merge(dst, s)
	_ = dst.Flush()
	for i, r := range mem.Records() {
		if r.Arg != int64(i) {
			t.Fatalf("tied records reordered: pos %d has arg %d", i, r.Arg)
		}
	}
}

func TestShardMaskAndNilSafety(t *testing.T) {
	s := NewShard(0, 1<<uint(KindVMExit))
	if !s.Enabled(KindVMExit) || s.Enabled(KindHypercall) {
		t.Fatal("shard mask not honored")
	}
	if s.Grid() != 0 {
		t.Fatalf("grid = %d", s.Grid())
	}
	var nilShard *Shard
	if nilShard.Records() != nil {
		t.Error("nil shard must have no records")
	}
	Merge(nil, s)                      // nil dst: no-op
	Merge(New(&Memory{}, 0), nil, nil) // nil shards: no-op
}

// closeCountSink counts Close calls and can fail them.
type closeCountSink struct {
	Memory
	closes int
	err    error
}

func (c *closeCountSink) Close() error {
	c.closes++
	return c.err
}

func TestTracerCloseIdempotent(t *testing.T) {
	sink := &closeCountSink{}
	tr := New(sink, 0)
	tr.Emit(Record{TS: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes)
	}
	if len(sink.Records()) != 1 {
		t.Fatalf("records = %d, want 1", len(sink.Records()))
	}
}

func TestTracerCloseStickyError(t *testing.T) {
	boom := errors.New("boom")
	sink := &closeCountSink{err: boom}
	tr := New(sink, 0)
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("first close err = %v, want boom", err)
	}
	// The second close reports the same error without re-closing the sink.
	if err := tr.Close(); !errors.Is(err, boom) {
		t.Fatalf("second close err = %v, want boom", err)
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes)
	}
}
