package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	for k := Kind(0); k < numKinds; k++ {
		if tr.Enabled(k) {
			t.Fatalf("nil tracer reports %v enabled", k)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestMaskGating(t *testing.T) {
	tr := New(Discard{}, 8)
	for k := Kind(0); k < numKinds; k++ {
		if !tr.Enabled(k) {
			t.Fatalf("kind %v disabled by default", k)
		}
	}
	tr.SetMask(0)
	for k := Kind(0); k < numKinds; k++ {
		if tr.Enabled(k) {
			t.Fatalf("kind %v enabled under zero mask", k)
		}
	}
	tr.Enable(KindHypercall, KindGCMark)
	if !tr.Enabled(KindHypercall) || !tr.Enabled(KindGCMark) {
		t.Error("Enable did not enable")
	}
	if tr.Enabled(KindGuestPF) {
		t.Error("unrelated kind enabled")
	}
	tr.Disable(KindHypercall)
	if tr.Enabled(KindHypercall) {
		t.Error("Disable did not disable")
	}
	if !tr.Enabled(KindGCMark) {
		t.Error("Disable clobbered another kind")
	}
}

func TestRingBatchesToSink(t *testing.T) {
	mem := &Memory{}
	tr := New(mem, 4)
	for i := 0; i < 3; i++ {
		tr.Emit(Record{Kind: KindVMExit, TS: int64(i)})
	}
	if len(mem.Records()) != 0 {
		t.Fatalf("sink saw %d records before the ring filled", len(mem.Records()))
	}
	tr.Emit(Record{Kind: KindVMExit, TS: 3}) // fills the ring -> flush
	if len(mem.Records()) != 4 {
		t.Fatalf("sink saw %d records after fill, want 4", len(mem.Records()))
	}
	tr.Emit(Record{Kind: KindVMExit, TS: 4})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := mem.Records()
	if len(recs) != 5 {
		t.Fatalf("after Flush sink has %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.TS != int64(i) {
			t.Errorf("record %d out of order: TS=%d", i, r.TS)
		}
	}
	if tr.Emitted() != 5 {
		t.Errorf("Emitted = %d, want 5", tr.Emitted())
	}
}

func TestEmitZeroAlloc(t *testing.T) {
	tr := New(Discard{}, 1024)
	r := Record{Kind: KindGuestPF, TS: 1, Cost: 2, Addr: 0x4000, VM: 0}
	allocs := testing.AllocsPerRun(10000, func() {
		if tr.Enabled(KindGuestPF) {
			tr.Emit(r)
		}
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %v per call, want 0", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindHypercall, VM: 0, TS: 1234, Cost: 5651000, Addr: 0x400000, Arg: 3},
		{Kind: KindGuestPF, VM: 2, TS: 99, Cost: 1000, Addr: 0xfffffffff000, Arg: 1},
		{Kind: KindPMLDrain, VM: 1, TS: 0, Cost: 0, Addr: 0, Arg: -7},
	}
	var buf bytes.Buffer
	tr := New(NewJSONLWriter(&buf), 2)
	for _, r := range recs {
		tr.Emit(r)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(recs) {
		t.Fatalf("wrote %d lines, want %d:\n%s", got, len(recs), buf.String())
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("read back %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, back[i], recs[i])
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %v and %v share the name %q", prev, k, name)
		}
		seen[name] = k
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func TestParseKinds(t *testing.T) {
	hcPF := uint64(1)<<uint(KindHypercall) | uint64(1)<<uint(KindGuestPF)
	for _, tc := range []struct {
		in      string
		want    uint64
		wantErr bool
	}{
		{in: "", want: AllKinds},
		{in: "   ", want: AllKinds},
		{in: "all", want: AllKinds},
		{in: "hypercall, guest_pf", want: hcPF},
		// Blank elements from trailing or doubled commas are skipped.
		{in: "hypercall,guest_pf,", want: hcPF},
		{in: "hypercall,,guest_pf", want: hcPF},
		// A bare comma has only blank elements: nothing enabled.
		{in: ",", want: 0},
		// Duplicates are idempotent bit-ors.
		{in: "hypercall,hypercall,guest_pf", want: hcPF},
		// "all" composes with (and subsumes) named kinds.
		{in: "all,hypercall", want: AllKinds},
		{in: "hypercall,all", want: AllKinds},
		{in: "no_such_kind", wantErr: true},
		{in: "hypercall,no_such_kind", wantErr: true},
	} {
		mask, err := ParseKinds(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseKinds(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseKinds(%q): %v", tc.in, err)
			continue
		}
		if mask != tc.want {
			t.Errorf("ParseKinds(%q) = %x, want %x", tc.in, mask, tc.want)
		}
	}
}

func TestEmitAfterCloseIsDroppedNoOp(t *testing.T) {
	mem := &Memory{}
	tr := New(mem, 4)
	tr.Emit(Record{Kind: KindVMExit, TS: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(mem.Records()); got != 1 {
		t.Fatalf("sink has %d records after Close, want 1", got)
	}
	// Late emits (an error path firing after the CLI settled the trace
	// file) must not reach the sink, corrupt the ring, or go unaccounted.
	for i := 0; i < 6; i++ { // more than the ring, so a buggy Emit would flush
		tr.Emit(Record{Kind: KindVMExit, TS: int64(100 + i)})
	}
	if got := len(mem.Records()); got != 1 {
		t.Fatalf("post-Close emits reached the sink: %d records, want 1", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d after 6 post-Close emits, want 6", got)
	}
	if got := tr.Emitted(); got != 1 {
		t.Fatalf("Emitted = %d, want 1 (dropped emits never counted as emitted)", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Kind: KindGuestPF, Cost: 100, Arg: 1},
		{Kind: KindGuestPF, Cost: 300, Arg: 1},
		{Kind: KindRingCopy, Cost: 50, Arg: 10},
	}
	sums := Summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	// Kind order: KindGuestPF < KindRingCopy.
	if sums[0].Kind != KindGuestPF || sums[0].Count != 2 || int64(sums[0].Cost) != 400 || sums[0].Arg != 2 {
		t.Errorf("guest_pf summary wrong: %+v", sums[0])
	}
	if sums[1].Kind != KindRingCopy || sums[1].Count != 1 || int64(sums[1].Cost) != 50 || sums[1].Arg != 10 {
		t.Errorf("ring_copy summary wrong: %+v", sums[1])
	}
	table := SummaryTable(recs)
	out := table.Render()
	if !strings.Contains(out, "guest_pf") || !strings.Contains(out, "ring_copy") {
		t.Errorf("summary table missing kinds:\n%s", out)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 50},  // rank ceil(5) = 5
		{0.90, 90},  // rank ceil(9) = 9
		{0.99, 100}, // rank ceil(9.9) = 10
		{1.00, 100},
		{0.01, 10}, // rank ceil(0.1) -> 1
	} {
		if got := Percentile(sorted, tc.q); got != tc.want {
			t.Errorf("Percentile(q=%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 || Percentile(sorted, 0) != 0 || Percentile(sorted, 1.1) != 0 {
		t.Error("edge cases must return 0")
	}
	if got := Percentile([]int64{42}, 0.5); got != 42 {
		t.Errorf("single-element p50 = %d, want 42", got)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	// Hand-built record set (unsorted costs) pinning exact values.
	var recs []Record
	for _, c := range []int64{90, 10, 50, 30, 70, 20, 100, 40, 80, 60} {
		recs = append(recs, Record{Kind: KindRingCopy, Cost: c})
	}
	recs = append(recs, Record{Kind: KindPTWalk, Cost: 7})
	sums := Summarize(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	rc := sums[0]
	if rc.Kind != KindRingCopy {
		t.Fatalf("first summary is %v", rc.Kind)
	}
	if int64(rc.P50) != 50 || int64(rc.P90) != 90 || int64(rc.P99) != 100 || int64(rc.Max) != 100 {
		t.Errorf("ring_copy percentiles: p50=%d p90=%d p99=%d max=%d, want 50/90/100/100",
			int64(rc.P50), int64(rc.P90), int64(rc.P99), int64(rc.Max))
	}
	pw := sums[1]
	if int64(pw.P50) != 7 || int64(pw.P90) != 7 || int64(pw.P99) != 7 || int64(pw.Max) != 7 {
		t.Errorf("single-record percentiles all = 7, got %+v", pw)
	}
	out := SummaryTable(recs).Render()
	for _, col := range []string{"p50", "p90", "p99", "Max"} {
		if !strings.Contains(out, col) {
			t.Errorf("summary table missing %s column:\n%s", col, out)
		}
	}
}

// errSink fails every write, discarding the batch - the only way the
// tracer loses records.
type errSink struct{ n int }

func (s *errSink) WriteBatch(recs []Record) error {
	s.n += len(recs)
	return errors.New("sink full")
}

func TestDroppedCounterOnSinkError(t *testing.T) {
	tr := New(&errSink{}, 4)
	if tr.Dropped() != 0 {
		t.Fatal("fresh tracer reports drops")
	}
	// Overflow the ring twice: two failed batches of 4.
	for i := 0; i < 9; i++ {
		tr.Emit(Record{Kind: KindVMExit, TS: int64(i)})
	}
	if got := tr.Dropped(); got != 8 {
		t.Fatalf("Dropped = %d after two failed flushes, want 8", got)
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush must surface the sticky sink error")
	}
	if got := tr.Dropped(); got != 9 {
		t.Fatalf("Dropped = %d after final flush, want 9", got)
	}
	if tr.Emitted() != 9 {
		t.Fatalf("Emitted = %d, want 9 (drops do not rewrite history)", tr.Emitted())
	}
	// The drop count is visible in the summary rendering.
	out := SummaryTableFor(tr, nil).Render()
	if !strings.Contains(out, "9 records dropped") {
		t.Fatalf("summary does not surface drops:\n%s", out)
	}
	// A healthy tracer's summary carries no warning.
	ok := New(&Memory{}, 4)
	ok.Emit(Record{Kind: KindVMExit})
	if err := ok.Flush(); err != nil {
		t.Fatal(err)
	}
	if out := SummaryTableFor(ok, nil).Render(); strings.Contains(out, "dropped") {
		t.Fatalf("healthy summary mentions drops:\n%s", out)
	}
	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Fatal("nil tracer must report 0 drops")
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := &Memory{}, &Memory{}
	tr := New(Tee(a, b), 2)
	tr.Emit(Record{Kind: KindIRQ})
	tr.Emit(Record{Kind: KindIRQ})
	if len(a.Records()) != 2 || len(b.Records()) != 2 {
		t.Errorf("tee delivered %d/%d records, want 2/2", len(a.Records()), len(b.Records()))
	}
}
