// Package trace is the simulation-wide event-tracing subsystem: a bounded
// in-memory ring of typed trace records with pluggable sinks and per-kind
// enable masks.
//
// Every layer that charges virtual time (vCPU, hypervisor, guest kernel,
// OoH module/lib, tracking techniques, CRIU, Boehm GC) can attribute its
// costs to individual events instead of only aggregate counters - the
// per-event timeline view that makes the paper's cost model (Table V,
// Formulas 1-4) debuggable.
//
// Design constraints:
//
//   - Zero allocation on the hot path: Emit copies the fixed-size Record
//     into a preallocated ring and only hands full batches to the sink.
//   - Disabled tracing costs one branch: every instrumentation site guards
//     with Enabled(kind), which is nil-receiver safe, so an untraced
//     simulation pays a nil check and nothing else.
//   - Deterministic: records carry only virtual timestamps; attaching or
//     detaching a tracer never advances the clock, so traced and untraced
//     runs produce bit-identical virtual times.
//
// Like sim.Clock, a Tracer is not safe for concurrent use: one tracer
// belongs to one simulation goroutine. Experiment drivers that fan out
// give each grid cell its own Shard and fold them into the destination
// tracer with Merge after the barrier - see shard.go.
//
// Record kinds are hierarchical, not a partition: envelope kinds (e.g.
// KindHypercall, KindGuestPF, KindIRQ) measure a whole service span and
// include the cost of the narrower kinds emitted inside it (KindPMLDrain
// inside a hypercall, KindDemandFault inside a #PF). Summaries are
// per-kind; do not add rows across nesting levels.
package trace

import (
	"fmt"
	"strings"
)

// Kind identifies the event type of a Record. Kinds must stay below 64 so
// the enable mask fits one word.
type Kind uint8

// Event kinds, grouped by the layer that emits them.
const (
	// --- internal/cpu: vmexits and walk-circuit events -----------------
	KindVMExit       Kind = iota // other vmexit (vmread/vmwrite trap); Arg = reason
	KindHypercall                // hypercall service span; Arg = hypercall nr
	KindPMLFull                  // PML-buffer-full vmexit (drain included)
	KindEPTViolation             // EPT violation exit; Addr = faulting GPA
	KindGuestPF                  // guest #PF service span; Addr = GVA, Arg = 1 for write
	KindPMLLog                   // CPU appends one hypervisor-level PML entry; Addr = GPA
	KindEPMLLog                  // CPU appends one guest-level PML entry; Addr = GVA
	KindEPMLFullIRQ              // guest-buffer-full posted self-IPI span
	KindSPPViolation             // sub-page permission violation span; Addr = GVA

	// --- internal/guestos: kernel events -------------------------------
	KindContextSwitch  // context switch; Arg = outgoing pid
	KindIRQ            // posted interrupt delivery span; Arg = vector
	KindDemandFault    // ordinary demand-paging fault; Addr = GVA
	KindSoftDirtyFault // soft-dirty write-protect fault (M5); Addr = GVA
	KindUfdFault       // userfaultfd userspace fault span (M6); Addr = GVA
	KindClearRefs      // clear_refs walk (M15); Arg = pages walked

	// --- internal/core + internal/hypervisor: ring plumbing ------------
	KindRingCopy   // Fetch: draining ring entries (M18); Arg = entries
	KindPTWalk     // Fetch: pagemap walk building the reverse index (M16)
	KindReverseMap // Fetch: GPA->GVA lookups (M17); Arg = entries resolved
	KindRingDrain  // EPML guest-buffer drain into the ring; Arg = entries
	KindPMLDrain   // hypervisor PML-buffer drain; Arg = entries to ring

	// --- internal/tracking: technique phases ----------------------------
	KindTrackInit    // technique Init phase; Arg = costmodel.Technique
	KindTrackCollect // technique Collect phase; Arg = pages reported
	KindTrackClose   // technique Close phase

	// --- internal/criu + internal/boehmgc: exploitation phases ----------
	KindCRIUMD  // CRIU memory dump (dirty address collection)
	KindCRIUMW  // CRIU memory write (page dump to image); Arg = pages
	KindGCMark  // GC mark phase; Arg = objects scanned
	KindGCSweep // GC sweep phase; Arg = objects freed
	KindGCCycle // whole GC cycle; Arg = cycle number

	// --- internal/faults + tracking.Resilient: faults and recovery ------
	KindFault        // injected fault fired; Arg = faults.Point, Addr = site detail
	KindTrackRetry   // one transient-failure backoff wait; Arg = attempt number
	KindTrackDegrade // ladder descent; Arg = from<<8 | to (costmodel.Technique)
	KindTrackRescan  // soft-dirty rescan of a lossy epoch; Arg = pages recovered

	// --- internal/migration: transport recovery and transactions --------
	KindMigRetry  // one page-send retry backoff wait; Arg = attempt, Addr = GPA
	KindMigNack   // destination checksum NACK -> resend; Addr = GPA
	KindMigAbort  // migration aborted (partial image discarded); Arg = round
	KindMigResume // migration resumed from a journal; Arg = first live round

	// --- internal/monitor: online monitoring plane ----------------------
	KindMonAlert   // alert rule transition (firing/resolved); Arg = rule value
	KindMonPredict // convergence predictor flag; Arg = projected dirty pages

	numKinds // sentinel; keep last
)

var kindNames = [numKinds]string{
	KindVMExit:         "vmexit",
	KindHypercall:      "hypercall",
	KindPMLFull:        "pml_full",
	KindEPTViolation:   "ept_violation",
	KindGuestPF:        "guest_pf",
	KindPMLLog:         "pml_log",
	KindEPMLLog:        "epml_log",
	KindEPMLFullIRQ:    "epml_full_irq",
	KindSPPViolation:   "spp_violation",
	KindContextSwitch:  "context_switch",
	KindIRQ:            "irq",
	KindDemandFault:    "demand_fault",
	KindSoftDirtyFault: "softdirty_fault",
	KindUfdFault:       "ufd_fault",
	KindClearRefs:      "clear_refs",
	KindRingCopy:       "ring_copy",
	KindPTWalk:         "pt_walk",
	KindReverseMap:     "reverse_map",
	KindRingDrain:      "ring_drain",
	KindPMLDrain:       "pml_drain",
	KindTrackInit:      "track_init",
	KindTrackCollect:   "track_collect",
	KindTrackClose:     "track_close",
	KindCRIUMD:         "criu_md",
	KindCRIUMW:         "criu_mw",
	KindGCMark:         "gc_mark",
	KindGCSweep:        "gc_sweep",
	KindGCCycle:        "gc_cycle",
	KindFault:          "fault",
	KindTrackRetry:     "track_retry",
	KindTrackDegrade:   "track_degrade",
	KindTrackRescan:    "track_rescan",
	KindMigRetry:       "mig_retry",
	KindMigNack:        "mig_nack",
	KindMigAbort:       "mig_abort",
	KindMigResume:      "mig_resume",
	KindMonAlert:       "mon_alert",
	KindMonPredict:     "mon_predict",
}

// NumKinds returns how many kinds are defined.
func NumKinds() int { return int(numKinds) }

// String returns the kind's stable wire name (used in JSONL output).
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a wire name back to its Kind.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// ParseKinds converts a comma-separated list of kind names (the CLI
// -trace-kinds syntax) into an enable mask. An empty string means all
// kinds; the token "all" does the same explicitly and composes with named
// kinds ("all,hypercall" is just every kind). Blank elements (trailing or
// doubled commas) are skipped; duplicate names are harmless.
func ParseKinds(csv string) (uint64, error) {
	if strings.TrimSpace(csv) == "" {
		return AllKinds, nil
	}
	var mask uint64
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			mask |= AllKinds
			continue
		}
		k, ok := KindByName(name)
		if !ok {
			return 0, fmt.Errorf("trace: unknown kind %q (have all, %s)", name, strings.Join(kindNames[:], ", "))
		}
		mask |= 1 << uint(k)
	}
	return mask, nil
}

// Record is one trace event. The struct is fixed-size and passed by value
// so emitting never allocates.
type Record struct {
	TS   int64  // virtual nanoseconds at the event's start
	Cost int64  // virtual nanoseconds charged to this event
	Addr uint64 // guest address (GVA or GPA depending on Kind), 0 if n/a
	Arg  int64  // kind-specific detail (exit reason, entries, pid, ...)
	VM   int32  // VM/vCPU id the event occurred on
	Kind Kind
}

// AllKinds is the enable mask with every kind on.
const AllKinds uint64 = 1<<uint(numKinds) - 1

// DefaultRingRecords sizes the tracer's in-memory ring: records buffered
// between sink flushes.
const DefaultRingRecords = 4096

// Tracer buffers records in a bounded ring and flushes full batches to its
// sink. The zero Tracer is not usable; use New. A nil *Tracer is a valid
// disabled tracer: Enabled reports false and Emit is never reached.
type Tracer struct {
	mask    uint64
	buf     []Record
	sink    Sink
	err     error // first sink error, sticky
	emitted uint64
	dropped uint64
	closed  bool
}

// New returns a tracer writing to sink with all kinds enabled.
// ringRecords sizes the in-memory ring (<=0 selects DefaultRingRecords).
func New(sink Sink, ringRecords int) *Tracer {
	if ringRecords <= 0 {
		ringRecords = DefaultRingRecords
	}
	if sink == nil {
		sink = Discard{}
	}
	return &Tracer{mask: AllKinds, buf: make([]Record, 0, ringRecords), sink: sink}
}

// SetMask installs an explicit enable mask (bit i enables Kind(i)).
func (t *Tracer) SetMask(mask uint64) { t.mask = mask & AllKinds }

// Mask returns the current enable mask.
func (t *Tracer) Mask() uint64 { return t.mask }

// Enable turns the given kinds on.
func (t *Tracer) Enable(kinds ...Kind) {
	for _, k := range kinds {
		t.mask |= 1 << uint(k)
	}
}

// Disable turns the given kinds off.
func (t *Tracer) Disable(kinds ...Kind) {
	for _, k := range kinds {
		t.mask &^= 1 << uint(k)
	}
}

// Enabled reports whether kind k is traced. It is nil-receiver safe, so
// instrumentation sites need no separate nil check:
//
//	if tr := v.Tracer; tr.Enabled(trace.KindHypercall) { tr.Emit(...) }
func (t *Tracer) Enabled(k Kind) bool {
	return t != nil && t.mask&(1<<uint(k)) != 0
}

// Emit appends one record, flushing the ring to the sink when full. Callers
// are expected to have checked Enabled; Emit itself does not filter.
//
// Emitting after Close is a safe no-op counted as a drop: the sink is
// already settled, so the record can never reach it, and silently buffering
// it would make Emitted() overcount what the sink saw without any
// records_dropped signal.
func (t *Tracer) Emit(r Record) {
	if t.closed {
		t.dropped++
		return
	}
	t.buf = append(t.buf, r)
	t.emitted++
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

// Emitted returns how many records have been emitted since New.
func (t *Tracer) Emitted() uint64 { return t.emitted }

// Dropped returns how many emitted records never reached the sink because
// a WriteBatch call failed (the whole failed batch is discarded). A
// nonzero value means summaries and cross-checks built from the sink's
// output undercount; CLIs surface it in -summary output and as the
// trace/records_dropped metric. Nil-receiver safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

func (t *Tracer) flush() {
	if len(t.buf) == 0 {
		return
	}
	if err := t.sink.WriteBatch(t.buf); err != nil {
		t.dropped += uint64(len(t.buf))
		if t.err == nil {
			t.err = err
		}
	}
	t.buf = t.buf[:0]
}

// Flush drains the ring into the sink and returns the first sink error
// observed so far.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.flush()
	return t.err
}

// Close flushes and closes the sink when it implements io.Closer. Close is
// idempotent: a second call returns the sticky error without touching the
// sink again, so callers may both defer Close (to survive error paths) and
// call it explicitly on the happy path before reading the sink's output.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if t.closed {
		return t.err
	}
	t.closed = true
	err := t.Flush()
	if c, ok := t.sink.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil && t.err == nil {
		t.err = err
	}
	return err
}
