package trace

import (
	"time"

	"repro/internal/report"
)

// KindSummary aggregates every record of one kind.
type KindSummary struct {
	Kind  Kind
	Count int64
	Cost  time.Duration // summed Cost of all records
	Arg   int64         // summed Arg (entries, pages, ... - kind-specific)
}

// Summarize aggregates records per kind, returned in Kind order with
// untouched kinds omitted.
func Summarize(recs []Record) []KindSummary {
	var agg [numKinds]KindSummary
	for i := range recs {
		r := &recs[i]
		if r.Kind >= numKinds {
			continue
		}
		s := &agg[r.Kind]
		s.Count++
		s.Cost += time.Duration(r.Cost)
		s.Arg += r.Arg
	}
	var out []KindSummary
	for k := Kind(0); k < numKinds; k++ {
		if agg[k].Count > 0 {
			s := agg[k]
			s.Kind = k
			out = append(out, s)
		}
	}
	return out
}

// SummaryTable renders the per-kind cost breakdown of a trace. The share
// column is each kind's cost relative to the summed cost of all kinds;
// because envelope kinds include nested kinds' costs (see the package
// comment), shares can exceed 100% in aggregate and are a relative guide,
// not a partition.
func SummaryTable(recs []Record) *report.Table {
	sums := Summarize(recs)
	var total time.Duration
	for _, s := range sums {
		total += s.Cost
	}
	t := report.NewTable("Trace summary: virtual-time cost per event kind",
		"Kind", "Events", "Total cost", "Mean cost", "Share")
	for _, s := range sums {
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = s.Cost / time.Duration(s.Count)
		}
		share := 0.0
		if total > 0 {
			share = float64(s.Cost) / float64(total) * 100
		}
		t.AddRow(s.Kind.String(), s.Count, s.Cost, mean, report.FormatPercent(share))
	}
	t.AddNote("%d records; envelope kinds (hypercall, guest_pf, irq, gc_cycle, ...) include nested kinds' costs", len(recs))
	return t
}
