package trace

import (
	"sort"
	"time"

	"repro/internal/report"
)

// KindSummary aggregates every record of one kind, including exact
// nearest-rank percentiles over the per-record costs (computed from the
// raw records, so - unlike the metrics plane's log-bucketed histograms -
// these are not upper bounds but exact values).
type KindSummary struct {
	Kind  Kind
	Count int64
	Cost  time.Duration // summed Cost of all records
	Arg   int64         // summed Arg (entries, pages, ... - kind-specific)
	P50   time.Duration // median per-record cost
	P90   time.Duration // 90th-percentile per-record cost
	P99   time.Duration // 99th-percentile per-record cost
	Max   time.Duration // maximum per-record cost
}

// Percentile returns the nearest-rank q-quantile (0 < q <= 1) of a sorted
// ascending slice: the value at rank ceil(q*len). Returns 0 for an empty
// slice or out-of-range q.
func Percentile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Summarize aggregates records per kind, returned in Kind order with
// untouched kinds omitted.
func Summarize(recs []Record) []KindSummary {
	var agg [numKinds]KindSummary
	costs := make([][]int64, numKinds)
	for i := range recs {
		r := &recs[i]
		if r.Kind >= numKinds {
			continue
		}
		s := &agg[r.Kind]
		s.Count++
		s.Cost += time.Duration(r.Cost)
		s.Arg += r.Arg
		costs[r.Kind] = append(costs[r.Kind], r.Cost)
	}
	var out []KindSummary
	for k := Kind(0); k < numKinds; k++ {
		if agg[k].Count > 0 {
			s := agg[k]
			s.Kind = k
			c := costs[k]
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
			s.P50 = time.Duration(Percentile(c, 0.50))
			s.P90 = time.Duration(Percentile(c, 0.90))
			s.P99 = time.Duration(Percentile(c, 0.99))
			s.Max = time.Duration(c[len(c)-1])
			out = append(out, s)
		}
	}
	return out
}

// SummaryTable renders the per-kind cost breakdown of a trace. The share
// column is each kind's cost relative to the summed cost of all kinds;
// because envelope kinds include nested kinds' costs (see the package
// comment), shares can exceed 100% in aggregate and are a relative guide,
// not a partition.
func SummaryTable(recs []Record) *report.Table {
	return summaryTable(recs, 0)
}

// SummaryTableFor renders like SummaryTable and additionally surfaces the
// tracer's dropped-record count: when t.Dropped() is nonzero the table
// carries a warning note, because recs (read back from the sink) then
// undercount what the run actually emitted. Nil tracers are fine.
func SummaryTableFor(t *Tracer, recs []Record) *report.Table {
	return summaryTable(recs, t.Dropped())
}

func summaryTable(recs []Record, dropped uint64) *report.Table {
	sums := Summarize(recs)
	var total time.Duration
	for _, s := range sums {
		total += s.Cost
	}
	t := report.NewTable("Trace summary: virtual-time cost per event kind",
		"Kind", "Events", "Total cost", "Mean cost", "p50", "p90", "p99", "Max", "Share")
	for _, s := range sums {
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = s.Cost / time.Duration(s.Count)
		}
		share := 0.0
		if total > 0 {
			share = float64(s.Cost) / float64(total) * 100
		}
		t.AddRow(s.Kind.String(), s.Count, s.Cost, mean, s.P50, s.P90, s.P99, s.Max,
			report.FormatPercent(share))
	}
	t.AddNote("%d records; envelope kinds (hypercall, guest_pf, irq, gc_cycle, ...) include nested kinds' costs", len(recs))
	if dropped > 0 {
		t.AddNote("WARNING: %d records dropped at the sink - counts and costs above undercount the run", dropped)
	}
	return t
}
