package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sink consumes batches of records flushed from a Tracer's ring. WriteBatch
// must copy anything it keeps: the slice is reused for the next batch.
type Sink interface {
	WriteBatch(recs []Record) error
}

// Discard drops every record; useful for measuring tracing overhead and as
// the fallback sink.
type Discard struct{}

// WriteBatch implements Sink.
func (Discard) WriteBatch([]Record) error { return nil }

// Memory retains every record in memory, for tests and for the in-process
// summary mode.
type Memory struct {
	recs []Record
}

// WriteBatch implements Sink.
func (m *Memory) WriteBatch(recs []Record) error {
	m.recs = append(m.recs, recs...)
	return nil
}

// Records returns the retained records in emission order.
func (m *Memory) Records() []Record { return m.recs }

// Reset drops the retained records.
func (m *Memory) Reset() { m.recs = nil }

// Tee fans each batch out to several sinks.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

// WriteBatch implements Sink.
func (t teeSink) WriteBatch(recs []Record) error {
	var first error
	for _, s := range t {
		if err := s.WriteBatch(recs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every sub-sink that is closable.
func (t teeSink) Close() error {
	var first error
	for _, s := range t {
		if c, ok := s.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// JSONLWriter streams records as one JSON object per line:
//
//	{"kind":"hypercall","vm":0,"ts":1234,"cost":5651000,"addr":"0x400000","arg":3}
//
// The addr field is omitted when zero. Lines are buffered; Close (or the
// owning Tracer's Close) flushes them.
type JSONLWriter struct {
	w   *bufio.Writer
	c   io.Closer // underlying closer, if any
	tmp []byte
}

// NewJSONLWriter returns a sink encoding records to w. If w implements
// io.Closer it is closed by Close.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	j := &JSONLWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// WriteBatch implements Sink.
func (j *JSONLWriter) WriteBatch(recs []Record) error {
	for i := range recs {
		r := &recs[i]
		b := j.tmp[:0]
		b = append(b, `{"kind":"`...)
		b = append(b, r.Kind.String()...)
		b = append(b, `","vm":`...)
		b = strconv.AppendInt(b, int64(r.VM), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, r.TS, 10)
		b = append(b, `,"cost":`...)
		b = strconv.AppendInt(b, r.Cost, 10)
		if r.Addr != 0 {
			b = append(b, `,"addr":"0x`...)
			b = strconv.AppendUint(b, r.Addr, 16)
			b = append(b, '"')
		}
		b = append(b, `,"arg":`...)
		b = strconv.AppendInt(b, r.Arg, 10)
		b = append(b, '}', '\n')
		j.tmp = b
		if _, err := j.w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes buffered lines and closes the underlying writer if closable.
func (j *JSONLWriter) Close() error {
	err := j.w.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL decodes a JSONL trace produced by JSONLWriter back into
// records, for offline summaries (oohtrack -summarize). It accepts only
// the exact field layout JSONLWriter emits.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rec, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine decodes one JSONL record without pulling in encoding/json.
func parseLine(s string) (Record, error) {
	var rec Record
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return rec, fmt.Errorf("malformed record %q", s)
	}
	for _, field := range strings.Split(s[1:len(s)-1], ",") {
		key, val, ok := strings.Cut(field, ":")
		if !ok {
			return rec, fmt.Errorf("malformed field %q", field)
		}
		key = strings.Trim(key, `"`)
		switch key {
		case "kind":
			k, ok := KindByName(strings.Trim(val, `"`))
			if !ok {
				return rec, fmt.Errorf("unknown kind %s", val)
			}
			rec.Kind = k
		case "vm":
			n, err := strconv.ParseInt(val, 10, 32)
			if err != nil {
				return rec, err
			}
			rec.VM = int32(n)
		case "ts":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return rec, err
			}
			rec.TS = n
		case "cost":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return rec, err
			}
			rec.Cost = n
		case "addr":
			hex := strings.TrimPrefix(strings.Trim(val, `"`), "0x")
			n, err := strconv.ParseUint(hex, 16, 64)
			if err != nil {
				return rec, err
			}
			rec.Addr = n
		case "arg":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return rec, err
			}
			rec.Arg = n
		default:
			return rec, fmt.Errorf("unknown field %q", key)
		}
	}
	return rec, nil
}
