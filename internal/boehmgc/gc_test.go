package boehmgc

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

func newTestProc(t testing.TB) *guestos.Process {
	t.Helper()
	model := costmodel.Default()
	hyp := hypervisor.New(mem.NewPhysMem(0), model)
	vm, err := hyp.CreateVM()
	if err != nil {
		t.Fatalf("CreateVM: %v", err)
	}
	k := guestos.NewKernel(vm.VCPU, model)
	return k.Spawn("gc-test")
}

func newTestGC(t testing.TB, heapBytes uint64) *GC {
	t.Helper()
	gc, err := New(newTestProc(t), heapBytes, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return gc
}

// TestReachableSurvive: objects reachable from roots are never collected.
func TestReachableSurvive(t *testing.T) {
	gc := newTestGC(t, 1<<20)
	// root -> a -> b, plus loose garbage.
	root, err := gc.Alloc(24, 2)
	if err != nil {
		t.Fatalf("Alloc root: %v", err)
	}
	gc.AddRoot(root)
	a, err := gc.Alloc(24, 2)
	if err != nil {
		t.Fatalf("Alloc a: %v", err)
	}
	b, err := gc.Alloc(16, 1)
	if err != nil {
		t.Fatalf("Alloc b: %v", err)
	}
	if err := gc.SetPtr(root, 0, a); err != nil {
		t.Fatalf("SetPtr: %v", err)
	}
	if err := gc.SetPtr(a, 1, b); err != nil {
		t.Fatalf("SetPtr: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := gc.Alloc(64, 0); err != nil { // garbage
			t.Fatalf("Alloc garbage: %v", err)
		}
	}
	stats, err := gc.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if stats.Live != 3 {
		t.Errorf("Live = %d, want 3", stats.Live)
	}
	if stats.Freed != 10 {
		t.Errorf("Freed = %d, want 10", stats.Freed)
	}
	// Data written before GC must be intact after.
	if err := gc.SetData(b, 8, 42); err != nil {
		t.Fatalf("SetData: %v", err)
	}
	if _, err := gc.Collect(); err != nil {
		t.Fatalf("Collect 2: %v", err)
	}
	got, err := gc.GetData(b, 8)
	if err != nil {
		t.Fatalf("GetData: %v", err)
	}
	if got != 42 {
		t.Errorf("b.data = %d, want 42", got)
	}
}

// TestCycleCollected: reference cycles unreachable from roots are freed.
func TestCycleCollected(t *testing.T) {
	gc := newTestGC(t, 1<<20)
	x, _ := gc.Alloc(16, 1)
	y, _ := gc.Alloc(16, 1)
	if err := gc.SetPtr(x, 0, y); err != nil {
		t.Fatal(err)
	}
	if err := gc.SetPtr(y, 0, x); err != nil {
		t.Fatal(err)
	}
	stats, err := gc.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if stats.Freed != 2 || stats.Live != 0 {
		t.Errorf("Freed=%d Live=%d, want 2/0", stats.Freed, stats.Live)
	}
}

// TestRootRemovalFrees: dropping the last root frees the whole graph.
func TestRootRemovalFrees(t *testing.T) {
	gc := newTestGC(t, 1<<20)
	root, _ := gc.Alloc(24, 2)
	child, _ := gc.Alloc(16, 0)
	gc.AddRoot(root)
	if err := gc.SetPtr(root, 0, child); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.Collect(); err != nil {
		t.Fatal(err)
	}
	if gc.LiveObjects() != 2 {
		t.Fatalf("live = %d, want 2", gc.LiveObjects())
	}
	gc.RemoveRoot(root)
	stats, err := gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Live != 0 || gc.LiveObjects() != 0 {
		t.Errorf("after root removal: Live=%d heap=%d, want 0/0", stats.Live, gc.LiveObjects())
	}
}

// TestAutoTrigger: allocation volume triggers collection.
func TestAutoTrigger(t *testing.T) {
	gc := newTestGC(t, 1<<20)
	gc.TriggerBytes = 4096
	for i := 0; i < 100; i++ {
		if _, err := gc.Alloc(128, 0); err != nil {
			t.Fatalf("Alloc: %v", err)
		}
	}
	if len(gc.Cycles()) == 0 {
		t.Error("no automatic GC cycles after 12 KiB allocated with 4 KiB trigger")
	}
}

// TestEmergencyCollection: an exhausted heap collects and retries.
func TestEmergencyCollection(t *testing.T) {
	gc := newTestGC(t, 64*1024)
	// Fill the heap with garbage, no roots.
	for i := 0; i < 100; i++ {
		if _, err := gc.Alloc(1024, 0); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	// The next allocations force emergency cycles rather than failing.
	for i := 0; i < 50; i++ {
		if _, err := gc.Alloc(2048, 0); err != nil {
			t.Fatalf("Alloc after pressure: %v", err)
		}
	}
	if len(gc.Cycles()) == 0 {
		t.Error("no emergency collections happened")
	}
}

// TestBadSlotErrors: pointer-slot misuse is rejected.
func TestBadSlotErrors(t *testing.T) {
	gc := newTestGC(t, 1<<20)
	obj, _ := gc.Alloc(24, 1)
	if err := gc.SetPtr(obj, 1, obj); err == nil {
		t.Error("SetPtr beyond nptrs succeeded")
	}
	if err := gc.SetData(obj, 0, 1); err == nil {
		t.Error("SetData into pointer slot succeeded")
	}
	if _, err := gc.Alloc(8, 2); err == nil {
		t.Error("Alloc with more pointer slots than payload succeeded")
	}
}
