package boehmgc

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/machine"
)

// newTrackedGC builds a GC whose incremental cycles use the given
// technique on a full machine stack.
func newTrackedGC(t testing.TB, kind costmodel.Technique, heapBytes uint64) *GC {
	t.Helper()
	m, err := machine.New(machine.Config{})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("gc-app")
	gc, err := New(proc, heapBytes, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tech, err := g.NewTechnique(kind, proc)
	if err != nil {
		t.Fatalf("NewTechnique: %v", err)
	}
	gc.Tech = tech
	return gc
}

// TestIncrementalCorrectness runs mutation between cycles under every
// technique and checks that (a) reachable objects survive, (b) mutated
// pointers are honoured (newly reachable objects survive, newly
// unreachable ones are freed) - which only works if the dirty page set is
// complete.
func TestIncrementalCorrectness(t *testing.T) {
	for _, kind := range machine.RealTechniques() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			gc := newTrackedGC(t, kind, 1<<22)
			root, _ := gc.Alloc(32, 3)
			gc.AddRoot(root)
			old, _ := gc.Alloc(16, 0)
			if err := gc.SetPtr(root, 0, old); err != nil {
				t.Fatal(err)
			}

			// Cycle 1: full trace; arms incremental tracking.
			if _, err := gc.Collect(); err != nil {
				t.Fatalf("cycle 1: %v", err)
			}

			// Mutate: swap old out, fresh in.
			fresh, _ := gc.Alloc(16, 0)
			if err := gc.SetPtr(root, 0, fresh); err != nil {
				t.Fatal(err)
			}

			stats, err := gc.Collect()
			if err != nil {
				t.Fatalf("cycle 2: %v", err)
			}
			if !stats.Incremental {
				t.Error("cycle 2 not incremental")
			}
			// fresh must be alive, old must be freed.
			if _, ok := gc.Heap.BlockSize(fresh.Addr); !ok {
				t.Error("freshly linked object was collected (incomplete dirty set?)")
			}
			if _, ok := gc.Heap.BlockSize(old.Addr); ok {
				t.Error("unlinked object survived")
			}
		})
	}
}

// TestIncrementalSkipsCleanObjects verifies the economics: with a big
// stable graph and one mutated object, the incremental cycle re-scans only
// a small fraction.
func TestIncrementalSkipsCleanObjects(t *testing.T) {
	gc := newTrackedGC(t, costmodel.EPML, 1<<24)
	// A linked list of 2000 nodes.
	head, _ := gc.Alloc(24, 1)
	gc.AddRoot(head)
	cur := head
	for i := 0; i < 2000; i++ {
		next, err := gc.Alloc(24, 1)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if err := gc.SetPtr(cur, 0, next); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if _, err := gc.Collect(); err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	// Touch just the head.
	if err := gc.SetData(head, 16, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := gc.Collect()
	if err != nil {
		t.Fatalf("cycle 2: %v", err)
	}
	if !stats.Incremental {
		t.Fatal("cycle 2 not incremental")
	}
	if stats.SkippedScan < 1500 {
		t.Errorf("SkippedScan = %d, want >= 1500 of ~2000 clean objects", stats.SkippedScan)
	}
	if stats.Scanned > 500 {
		t.Errorf("Scanned = %d, want <= 500", stats.Scanned)
	}
}
