package boehmgc

import (
	"slices"
	"time"

	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StartIncremental arms the dirty page technique immediately, so that even
// the first collection cycle runs incrementally over the pages dirtied
// since this call (typically: everything the application allocates and
// initializes). This matches the paper's Boehm integration, where the
// first cycle carries SPML's full reverse-mapping cost (Fig. 5). Without
// it, the first Collect is a full stop-the-world trace and the technique
// arms afterwards.
func (g *GC) StartIncremental() error {
	if g.Tech == nil || g.tracking {
		return nil
	}
	if err := g.Tech.Init(); err != nil {
		return err
	}
	g.tracking = true
	return nil
}

// Collect runs one garbage collection cycle.
//
// The first cycle (and every cycle when no technique is installed) is a
// full stop-the-world trace: every reachable object's pointer slots are
// read from guest memory. Subsequent cycles are incremental: the mark
// phase first asks the tracking technique for the pages dirtied since the
// previous cycle - this is the exact step the paper patches in Boehm - and
// then re-reads only objects that are new or sit on dirty pages, tracing
// unmodified old objects from the cached shadow graph.
func (g *GC) Collect() (CycleStats, error) {
	stats := CycleStats{Cycle: len(g.cycles) + 1}
	tr, ev := g.Proc.Kernel().VCPU.Tracer, g.Proc.Kernel().VCPU.Met
	var cycleStart int64
	if tr != nil || ev != nil {
		cycleStart = g.clock.Nanos()
	}
	total := sim.StartWatch(g.clock)
	tap := g.Proc.Kernel().VCPU.Prof
	cySp := tap.Begin(prof.SubGC, "cycle")
	defer cySp.End()

	// --- mark phase -------------------------------------------------------
	mark := sim.StartWatch(g.clock)
	markSp := tap.Begin(prof.SubGC, "mark")

	clear(g.dirty)
	dirty := g.dirty
	full := g.Tech == nil || !g.tracking
	if !full {
		tw := sim.StartWatch(g.clock)
		trackSp := tap.Begin(prof.SubGC, "track")
		pages, err := g.Tech.Collect()
		if err != nil {
			return stats, err
		}
		trackSp.End()
		stats.TrackTime = tw.Elapsed()
		for _, p := range pages {
			dirty[p.PageFloor()] = struct{}{}
		}
		stats.Incremental = true
		stats.DirtyPages = len(dirty)
	}

	clear(g.marked)
	marked := g.marked
	// Seed the stack in sorted address order: root map iteration order is
	// randomized per process, and since per-object scan costs differ (shadow
	// hits vs word-by-word reads), a different visit order changes the
	// clock's intermediate values - enough to move metric sampler ticks
	// between identically-seeded runs, even though the cycle total is
	// order-invariant.
	var stack []mem.GVA
	for root := range g.roots {
		stack = append(stack, root)
	}
	slices.Sort(stack)
	for len(stack) > 0 {
		addr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if addr == 0 {
			continue
		}
		if _, ok := g.Heap.BlockSize(addr); !ok {
			continue // conservative: not a managed object
		}
		if _, dup := marked[addr]; dup {
			continue
		}
		marked[addr] = struct{}{}
		g.clock.Advance(g.markEntryCost)

		edges, err := g.objectEdges(addr, full, dirty, &stats)
		if err != nil {
			return stats, err
		}
		stack = append(stack, edges...)
	}
	markSp.End()
	stats.MarkTime = mark.Elapsed()
	if tr.Enabled(trace.KindGCMark) {
		tr.Emit(trace.Record{Kind: trace.KindGCMark, VM: int32(g.Proc.Kernel().VCPU.ID),
			TS: g.clock.Nanos() - int64(stats.MarkTime), Cost: int64(stats.MarkTime),
			Arg: int64(stats.Scanned)})
	}
	ev.Observe(trace.KindGCMark, g.clock.Nanos(), int64(stats.MarkTime), int64(stats.Scanned))

	// --- sweep phase ------------------------------------------------------
	var sweepStart int64
	if tr != nil || ev != nil {
		sweepStart = g.clock.Nanos()
	}
	sweep := sim.StartWatch(g.clock)
	sweepSp := tap.Begin(prof.SubGC, "sweep")
	dead := g.dead[:0]
	g.Heap.Blocks(func(addr mem.GVA, size uint64) bool {
		if _, live := marked[addr]; !live {
			dead = append(dead, addr)
		}
		g.clock.Advance(g.markEntryCost)
		return true
	})
	// Free in address order: map iteration order must not leak into the
	// free list, or allocation addresses (and thus page-dirty patterns)
	// would differ between identically-seeded runs.
	slices.Sort(dead)
	for _, addr := range dead {
		delete(g.shadow, addr)
		if err := g.Heap.Free(addr); err != nil {
			return stats, err
		}
	}
	g.dead = dead
	sweepSp.End()
	stats.SweepTime = sweep.Elapsed()
	stats.Freed = len(dead)
	stats.Live = len(marked)
	if tr.Enabled(trace.KindGCSweep) {
		tr.Emit(trace.Record{Kind: trace.KindGCSweep, VM: int32(g.Proc.Kernel().VCPU.ID),
			TS: sweepStart, Cost: g.clock.Nanos() - sweepStart, Arg: int64(stats.Freed)})
	}
	ev.Observe(trace.KindGCSweep, g.clock.Nanos(), g.clock.Nanos()-sweepStart, int64(stats.Freed))

	// Re-arm the dirty tracker for the next incremental cycle.
	if g.Tech != nil && !g.tracking {
		if err := g.Tech.Init(); err != nil {
			return stats, err
		}
		g.tracking = true
	}
	g.bytesSinceGC = 0

	stats.Total = total.Elapsed()
	g.cycles = append(g.cycles, stats)
	if tr.Enabled(trace.KindGCCycle) {
		tr.Emit(trace.Record{Kind: trace.KindGCCycle, VM: int32(g.Proc.Kernel().VCPU.ID),
			TS: cycleStart, Cost: g.clock.Nanos() - cycleStart, Arg: int64(stats.Cycle)})
	}
	ev.Observe(trace.KindGCCycle, g.clock.Nanos(), g.clock.Nanos()-cycleStart, int64(stats.Cycle))
	return stats, nil
}

// shadowEntry is one old object's cached state: its outgoing edges as of
// the last scan and its block size (header included), so the dirty-page
// probe needs no heap lookup.
type shadowEntry struct {
	edges []mem.GVA
	size  uint64
}

// objectEdges returns the outgoing pointers of the object at addr. During
// incremental cycles, clean old objects come from the shadow graph (no
// guest memory reads); dirty or new objects are re-read and the shadow is
// refreshed.
func (g *GC) objectEdges(addr mem.GVA, full bool, dirty map[mem.GVA]struct{}, stats *CycleStats) ([]mem.GVA, error) {
	if !full {
		// Only old objects can have a shadow entry (see the field comment),
		// so its presence subsumes the new-since-GC check.
		if se, ok := g.shadow[addr]; ok && !blockDirty(addr, se.size, dirty) {
			stats.SkippedScan++
			g.clock.Advance(g.markEntryCost)
			return se.edges, nil
		}
	}
	// Scan from guest memory.
	h, err := g.Proc.ReadU64(addr)
	if err != nil {
		return nil, err
	}
	size, nptrs := decodeHeader(h)
	edges := make([]mem.GVA, 0, nptrs)
	for i := 0; i < nptrs; i++ {
		v, err := g.Proc.ReadU64(addr.Add(headerBytes + uint64(i)*8))
		if err != nil {
			return nil, err
		}
		if v != 0 {
			edges = append(edges, mem.GVA(v))
		}
		g.clock.Advance(g.scanWordCost)
	}
	stats.Scanned++
	// The header's size field is the aligned payload size Alloc passed to
	// the heap, so headerBytes+size is exactly Heap.BlockSize(addr).
	g.shadow[addr] = shadowEntry{edges: edges, size: headerBytes + size}
	return edges, nil
}

// blockDirty reports whether any page a block of size bytes at addr
// touches is in the dirty set.
func blockDirty(addr mem.GVA, size uint64, dirty map[mem.GVA]struct{}) bool {
	for page := addr.PageFloor(); page < addr.Add(size); page = page.Add(mem.PageSize) {
		if _, yes := dirty[page]; yes {
			return true
		}
	}
	return false
}

// TotalGCTime sums all cycle times (Fig. 5's per-application aggregate).
func (g *GC) TotalGCTime() time.Duration {
	var total time.Duration
	for _, c := range g.cycles {
		total += c.Total
	}
	return total
}
