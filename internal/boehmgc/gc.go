// Package boehmgc implements a Boehm-style conservative mark-sweep garbage
// collector with incremental/generational collection driven by dirty page
// tracking, over a page-backed heap in a simulated guest process.
//
// Boehm GC's incremental mode ("virtual dirty bits") avoids re-scanning
// objects whose pages were not modified since the previous cycle; stock
// Boehm obtains the dirty set from /proc (clear_refs + pagemap). The
// paper's patch (§IV-E) replaces exactly that step of the mark phase with
// an OoH ring buffer read; this package accepts any tracking.Technique at
// the same integration point.
package boehmgc

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/gheap"
	"repro/internal/guestos"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tracking"
)

// Object is a handle to a GC-managed object: the guest address of its
// header word. Payload starts one word later.
type Object struct {
	Addr mem.GVA
}

// IsNil reports whether the handle is the null object.
func (o Object) IsNil() bool { return o.Addr == 0 }

// headerBytes is the object header: one word encoding payload size and the
// number of leading pointer slots.
const headerBytes = 8

// encodeHeader packs payload size (bytes) and pointer-slot count.
func encodeHeader(size uint64, nptrs int) uint64 { return size<<16 | uint64(nptrs)&0xFFFF }

func decodeHeader(h uint64) (size uint64, nptrs int) { return h >> 16, int(h & 0xFFFF) }

// CycleStats records one garbage collection cycle, the unit Fig. 5 plots.
type CycleStats struct {
	Cycle       int
	Incremental bool
	TrackTime   time.Duration // dirty-set acquisition (the technique's share)
	MarkTime    time.Duration // tracing, including TrackTime
	SweepTime   time.Duration
	Total       time.Duration
	DirtyPages  int
	Scanned     int // objects whose slots were re-read from guest memory
	SkippedScan int // clean old objects satisfied from the shadow graph
	Freed       int
	Live        int
}

// Errors returned by the collector.
var (
	ErrNotManaged = errors.New("boehmgc: address is not a managed object")
	ErrBadSlot    = errors.New("boehmgc: pointer slot out of range")
)

// GC is the collector instance for one process.
type GC struct {
	Heap *gheap.Heap
	Proc *guestos.Process

	// Tech supplies dirty pages for incremental cycles; nil forces full
	// stop-the-world tracing every cycle.
	Tech tracking.Technique

	roots map[mem.GVA]struct{}

	// shadow caches each old object's outgoing edges (and block size, for
	// the dirty-page probe) as of the last cycle; objects on clean pages
	// are traced from the shadow without touching guest memory, which is
	// precisely the work incremental collection saves. Shadow presence
	// also distinguishes old objects from new ones: sweep deletes an entry
	// before its block can be reused, so an object allocated since the
	// previous cycle never has one and is always scanned.
	shadow map[mem.GVA]shadowEntry

	// Cycle-scratch structures, reused across cycles so the mark and dirty
	// sets are not re-grown from empty maps every cycle. Neither map is
	// ever iterated, so reuse cannot leak map order into the simulation.
	marked map[mem.GVA]struct{}
	dirty  map[mem.GVA]struct{}
	dead   []mem.GVA

	// TriggerBytes starts a cycle automatically once this many bytes have
	// been allocated since the previous cycle (0 disables auto cycles).
	TriggerBytes  uint64
	bytesSinceGC  uint64
	tracking      bool
	clock         *sim.Clock
	cycles        []CycleStats
	scanWordCost  time.Duration
	markEntryCost time.Duration
}

// New builds a collector over a fresh heap of heapBytes inside proc.
func New(proc *guestos.Process, heapBytes uint64, tech tracking.Technique) (*GC, error) {
	heap, err := gheap.New(proc, heapBytes, true)
	if err != nil {
		return nil, err
	}
	model := proc.Kernel().Model
	return &GC{
		Heap:          heap,
		Proc:          proc,
		Tech:          tech,
		roots:         make(map[mem.GVA]struct{}),
		shadow:        make(map[mem.GVA]shadowEntry),
		marked:        make(map[mem.GVA]struct{}),
		dirty:         make(map[mem.GVA]struct{}),
		clock:         proc.Kernel().Clock,
		scanWordCost:  model.ReadPerPageOp,
		markEntryCost: model.KernelPageOp,
	}, nil
}

// Alloc creates an object with size payload bytes, the first nptrs words
// of which are pointer slots (initialized to nil).
func (g *GC) Alloc(size uint64, nptrs int) (Object, error) {
	if uint64(nptrs*8) > sizeAligned(size) {
		return Object{}, fmt.Errorf("boehmgc: %d pointer slots exceed %d payload bytes", nptrs, size)
	}
	if g.TriggerBytes > 0 && g.bytesSinceGC >= g.TriggerBytes {
		if _, err := g.Collect(); err != nil {
			return Object{}, err
		}
	}
	addr, err := g.Heap.Alloc(headerBytes + sizeAligned(size))
	if err != nil {
		// Emergency collection, then retry once: Boehm's slow path.
		if _, gcErr := g.Collect(); gcErr != nil {
			return Object{}, err
		}
		addr, err = g.Heap.Alloc(headerBytes + sizeAligned(size))
		if err != nil {
			return Object{}, err
		}
	}
	if err := g.Proc.WriteU64(addr, encodeHeader(sizeAligned(size), nptrs)); err != nil {
		return Object{}, err
	}
	// Pointer slots start nil; zeroing them is part of allocation.
	for i := 0; i < nptrs; i++ {
		if err := g.Proc.WriteU64(addr.Add(headerBytes+uint64(i)*8), 0); err != nil {
			return Object{}, err
		}
	}
	g.bytesSinceGC += headerBytes + sizeAligned(size)
	return Object{Addr: addr}, nil
}

func sizeAligned(n uint64) uint64 { return (n + 7) &^ 7 }

// AddRoot pins obj as a GC root.
func (g *GC) AddRoot(obj Object) { g.roots[obj.Addr] = struct{}{} }

// RemoveRoot unpins obj.
func (g *GC) RemoveRoot(obj Object) { delete(g.roots, obj.Addr) }

// SetPtr stores a pointer into slot i of obj (a guest memory write: the
// page becomes dirty and the next incremental cycle will re-scan obj).
func (g *GC) SetPtr(obj Object, slot int, target Object) error {
	size, nptrs, err := g.header(obj)
	if err != nil {
		return err
	}
	_ = size
	if slot < 0 || slot >= nptrs {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, nptrs)
	}
	return g.Proc.WriteU64(obj.Addr.Add(headerBytes+uint64(slot)*8), uint64(target.Addr))
}

// GetPtr loads pointer slot i of obj.
func (g *GC) GetPtr(obj Object, slot int) (Object, error) {
	_, nptrs, err := g.header(obj)
	if err != nil {
		return Object{}, err
	}
	if slot < 0 || slot >= nptrs {
		return Object{}, fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, nptrs)
	}
	v, err := g.Proc.ReadU64(obj.Addr.Add(headerBytes + uint64(slot)*8))
	if err != nil {
		return Object{}, err
	}
	return Object{Addr: mem.GVA(v)}, nil
}

// SetData stores a non-pointer word at byte offset off of obj's payload.
func (g *GC) SetData(obj Object, off uint64, v uint64) error {
	size, nptrs, err := g.header(obj)
	if err != nil {
		return err
	}
	if off < uint64(nptrs*8) || off+8 > size {
		return fmt.Errorf("%w: data offset %d (ptrs %d, size %d)", ErrBadSlot, off, nptrs, size)
	}
	return g.Proc.WriteU64(obj.Addr.Add(headerBytes+off), v)
}

// GetData loads a non-pointer word.
func (g *GC) GetData(obj Object, off uint64) (uint64, error) {
	return g.Proc.ReadU64(obj.Addr.Add(headerBytes + off))
}

// header reads and validates obj's header.
func (g *GC) header(obj Object) (size uint64, nptrs int, err error) {
	if _, ok := g.Heap.BlockSize(obj.Addr); !ok {
		return 0, 0, fmt.Errorf("%w: %v", ErrNotManaged, obj.Addr)
	}
	h, err := g.Proc.ReadU64(obj.Addr)
	if err != nil {
		return 0, 0, err
	}
	size, nptrs = decodeHeader(h)
	return size, nptrs, nil
}

// Cycles returns the per-cycle statistics collected so far.
func (g *GC) Cycles() []CycleStats { return g.cycles }

// LiveObjects returns the number of live heap blocks.
func (g *GC) LiveObjects() int {
	n, _ := g.Heap.Live()
	return n
}
