// Package gheap is a page-backed heap allocator inside a guest process's
// address space. The tkrzw-style key-value engines, the Boehm-style GC and
// several Phoenix kernels allocate their working memory from it, so their
// stores and loads flow through the simulated MMU and are visible to every
// dirty page tracking technique.
package gheap

import (
	"errors"
	"fmt"

	"repro/internal/guestos"
	"repro/internal/mem"
)

// Errors returned by the heap.
var (
	ErrOutOfHeap   = errors.New("gheap: out of heap space")
	ErrBadFree     = errors.New("gheap: free of unallocated block")
	ErrSizeTooBig  = errors.New("gheap: allocation exceeds arena size")
	ErrZeroSize    = errors.New("gheap: zero-size allocation")
	ErrOutOfBounds = errors.New("gheap: access outside allocated block")
)

// align rounds n up to 8 bytes, the heap's allocation granularity.
func align(n uint64) uint64 { return (n + 7) &^ 7 }

// Heap is a first-fit free-list allocator over one mmapped arena. It is
// not safe for concurrent use (one guest process, one vCPU).
type Heap struct {
	Proc   *guestos.Process
	Region guestos.Region

	// free list, sorted by address, coalesced on free.
	free []span
	// allocated block sizes, for Free validation and GC sweeps.
	blocks map[mem.GVA]uint64

	allocated uint64 // live bytes
	peak      uint64
}

type span struct {
	start mem.GVA
	size  uint64
}

// New carves a heap of the given size (rounded to pages) out of the
// process's address space. When eager is true the arena is pre-faulted.
func New(proc *guestos.Process, size uint64, eager bool) (*Heap, error) {
	region, err := proc.Mmap(size, eager)
	if err != nil {
		return nil, err
	}
	// Presize the block table: GC-driven workloads keep tens of thousands
	// of live blocks, and growing the map from empty re-hashes every block
	// several times per heap. The hint is bounded so tiny heaps stay cheap.
	hint := size / 4096
	if hint > 1<<15 {
		hint = 1 << 15
	}
	return &Heap{
		Proc:   proc,
		Region: region,
		free:   []span{{start: region.Start, size: region.Size()}},
		blocks: make(map[mem.GVA]uint64, hint),
	}, nil
}

// Alloc returns the address of a fresh block of at least size bytes.
func (h *Heap) Alloc(size uint64) (mem.GVA, error) {
	if size == 0 {
		return 0, ErrZeroSize
	}
	size = align(size)
	if size > h.Region.Size() {
		return 0, fmt.Errorf("%w: %d", ErrSizeTooBig, size)
	}
	for i, s := range h.free {
		if s.size < size {
			continue
		}
		addr := s.start
		if s.size == size {
			h.free = append(h.free[:i], h.free[i+1:]...)
		} else {
			h.free[i] = span{start: s.start.Add(size), size: s.size - size}
		}
		h.blocks[addr] = size
		h.allocated += size
		if h.allocated > h.peak {
			h.peak = h.allocated
		}
		return addr, nil
	}
	return 0, fmt.Errorf("%w: need %d, %d live", ErrOutOfHeap, size, h.allocated)
}

// Free releases the block at addr.
func (h *Heap) Free(addr mem.GVA) error {
	size, ok := h.blocks[addr]
	if !ok {
		return fmt.Errorf("%w: %v", ErrBadFree, addr)
	}
	delete(h.blocks, addr)
	h.allocated -= size
	h.insertFree(span{start: addr, size: size})
	return nil
}

// insertFree inserts a span keeping the list sorted and coalesced.
func (h *Heap) insertFree(s span) {
	lo, hi := 0, len(h.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.free[mid].start < s.start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.free = append(h.free, span{})
	copy(h.free[lo+1:], h.free[lo:])
	h.free[lo] = s
	// Coalesce with successor, then predecessor.
	if lo+1 < len(h.free) && h.free[lo].start.Add(h.free[lo].size) == h.free[lo+1].start {
		h.free[lo].size += h.free[lo+1].size
		h.free = append(h.free[:lo+1], h.free[lo+2:]...)
	}
	if lo > 0 && h.free[lo-1].start.Add(h.free[lo-1].size) == h.free[lo].start {
		h.free[lo-1].size += h.free[lo].size
		h.free = append(h.free[:lo], h.free[lo+1:]...)
	}
}

// BlockSize returns the size of the allocated block at addr.
func (h *Heap) BlockSize(addr mem.GVA) (uint64, bool) {
	size, ok := h.blocks[addr]
	return size, ok
}

// Blocks calls fn for every live block. Iteration order is unspecified.
func (h *Heap) Blocks(fn func(addr mem.GVA, size uint64) bool) {
	for addr, size := range h.blocks {
		if !fn(addr, size) {
			return
		}
	}
}

// Live returns the number of live blocks and bytes.
func (h *Heap) Live() (blocks int, bytes uint64) {
	return len(h.blocks), h.allocated
}

// Peak returns the peak live bytes.
func (h *Heap) Peak() uint64 { return h.peak }

// FreeBytes returns the total free space.
func (h *Heap) FreeBytes() uint64 {
	var total uint64
	for _, s := range h.free {
		total += s.size
	}
	return total
}

// checkBounds validates an access against a block.
func (h *Heap) checkBounds(addr mem.GVA, off, n uint64) (mem.GVA, error) {
	// Fast path: the access is within the arena. Block-precise checks
	// would require a lookup per access; bounds vs the arena suffice for
	// catching workload bugs.
	target := addr.Add(off)
	if target < h.Region.Start || target.Add(n) > h.Region.End {
		return 0, fmt.Errorf("%w: %v+%d (%d bytes)", ErrOutOfBounds, addr, off, n)
	}
	return target, nil
}

// WriteU64 stores v at block addr + off.
func (h *Heap) WriteU64(addr mem.GVA, off uint64, v uint64) error {
	target, err := h.checkBounds(addr, off, 8)
	if err != nil {
		return err
	}
	return h.Proc.WriteU64(target, v)
}

// ReadU64 loads the word at block addr + off.
func (h *Heap) ReadU64(addr mem.GVA, off uint64) (uint64, error) {
	target, err := h.checkBounds(addr, off, 8)
	if err != nil {
		return 0, err
	}
	return h.Proc.ReadU64(target)
}

// WriteBytes stores b at block addr + off.
func (h *Heap) WriteBytes(addr mem.GVA, off uint64, b []byte) error {
	target, err := h.checkBounds(addr, off, uint64(len(b)))
	if err != nil {
		return err
	}
	return h.Proc.Write(target, b)
}

// ReadBytes loads len(b) bytes from block addr + off.
func (h *Heap) ReadBytes(addr mem.GVA, off uint64, b []byte) error {
	target, err := h.checkBounds(addr, off, uint64(len(b)))
	if err != nil {
		return err
	}
	return h.Proc.Read(target, b)
}
