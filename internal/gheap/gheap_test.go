package gheap

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/guestos"
	"repro/internal/hypervisor"
	"repro/internal/mem"
)

func newHeap(t testing.TB, size uint64) *Heap {
	t.Helper()
	hyp := hypervisor.New(mem.NewPhysMem(0), costmodel.Default())
	vm, err := hyp.CreateVM()
	if err != nil {
		t.Fatal(err)
	}
	k := guestos.NewKernel(vm.VCPU, costmodel.Default())
	h, err := New(k.Spawn("heap"), size, false)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllocFreeReuse(t *testing.T) {
	h := newHeap(t, 1<<16)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if n, bytes := h.Live(); n != 2 || bytes != 104+200 {
		t.Errorf("Live = %d, %d", n, bytes)
	}
	if size, ok := h.BlockSize(a); !ok || size != 104 {
		t.Errorf("BlockSize(a) = %d, %v", size, ok)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
	// First-fit reuses the freed block.
	c, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("freed block not reused: %v vs %v", c, a)
	}
}

func TestAllocErrors(t *testing.T) {
	h := newHeap(t, 1<<14)
	if _, err := h.Alloc(0); !errors.Is(err, ErrZeroSize) {
		t.Errorf("zero alloc: %v", err)
	}
	if _, err := h.Alloc(1 << 20); !errors.Is(err, ErrSizeTooBig) {
		t.Errorf("oversize alloc: %v", err)
	}
	// Exhaustion.
	for {
		if _, err := h.Alloc(1024); err != nil {
			if !errors.Is(err, ErrOutOfHeap) {
				t.Errorf("exhaustion error: %v", err)
			}
			break
		}
	}
}

func TestCoalescing(t *testing.T) {
	h := newHeap(t, 1<<14)
	var addrs []mem.GVA
	for i := 0; i < 8; i++ {
		a, err := h.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	// Free all in a scrambled order; coalescing must restore one big span.
	for _, i := range []int{3, 1, 7, 0, 5, 2, 6, 4} {
		if err := h.Free(addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if free := h.FreeBytes(); free != h.Region.Size() {
		t.Errorf("FreeBytes = %d, want %d", free, h.Region.Size())
	}
	// A full-arena allocation must now succeed.
	if _, err := h.Alloc(h.Region.Size()); err != nil {
		t.Errorf("full-arena alloc after coalescing: %v", err)
	}
}

func TestReadWriteThroughHeap(t *testing.T) {
	h := newHeap(t, 1<<14)
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteU64(a, 8, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	v, err := h.ReadU64(a, 8)
	if err != nil || v != 0xCAFE {
		t.Errorf("ReadU64 = %#x, %v", v, err)
	}
	buf := []byte("heap bytes")
	if err := h.WriteBytes(a, 16, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(buf))
	if err := h.ReadBytes(a, 16, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(buf) {
		t.Errorf("ReadBytes = %q", got)
	}
	// Out-of-arena access rejected.
	if err := h.WriteU64(h.Region.End, 0, 1); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out of bounds: %v", err)
	}
}

// TestQuickAllocDisjoint: random allocations never overlap and stay inside
// the arena.
func TestQuickAllocDisjoint(t *testing.T) {
	h := newHeap(t, 1<<18)
	type block struct {
		addr mem.GVA
		size uint64
	}
	var live []block
	prop := func(sz uint16, freeIdx uint8) bool {
		size := uint64(sz%2048) + 1
		a, err := h.Alloc(size)
		if err == nil {
			if a < h.Region.Start || a.Add(size) > h.Region.End {
				return false
			}
			for _, b := range live {
				if a < b.addr.Add(b.size) && b.addr < a.Add(size) {
					return false // overlap
				}
			}
			live = append(live, block{a, align(size)})
		}
		if len(live) > 0 && freeIdx%3 == 0 {
			i := int(freeIdx) % len(live)
			if err := h.Free(live[i].addr); err != nil {
				return false
			}
			live = append(live[:i], live[i+1:]...)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPeakTracking(t *testing.T) {
	h := newHeap(t, 1<<14)
	a, _ := h.Alloc(1000)
	b, _ := h.Alloc(2000)
	_ = h.Free(a)
	_ = h.Free(b)
	if h.Peak() < 3000 {
		t.Errorf("Peak = %d, want >= 3000", h.Peak())
	}
	if n, bytes := h.Live(); n != 0 || bytes != 0 {
		t.Errorf("Live after frees = %d, %d", n, bytes)
	}
}
