// Package hvoracle registers the "oracle" backend: a perfect dirty-bit
// hypervisor layered on the same simulator core as the "sim" backend. It
// observes EPT walks directly - every write that commits a dirty flag and
// every read that commits an accessed flag fires a host-side callback -
// and accumulates the touched GPAs in host maps, charging zero PML cost:
// no buffer entries, no PML-full vmexits, no drains, no VMCS arming.
//
// The result is the idealized lower bound the paper's techniques chase: a
// tracker with ARM-DBM-style "dirty bits for free" semantics and an
// instantaneous harvest. Runs under this backend answer "how much of a
// technique's overhead is PML mechanics vs. inherent cost of touching
// memory"; the conformance suite runs the tracking/migration tests under
// it to pin down that the *sets* techniques report are backend-invariant
// even when the *costs* differ.
//
// Exactness argument (mirrors the observer contract in internal/ept):
// clearing dirty/accessed flags bumps the EPT generation, which kills
// every cached translation, so after each Collect the first touch of each
// page must re-walk and re-fire the observer. No touched page is missed,
// and only genuinely touched pages are reported.
package hvoracle

import (
	"fmt"
	"slices"

	"repro/internal/costmodel"
	"repro/internal/hv"
	"repro/internal/hv/hvsim"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/trace"
)

func init() {
	hv.Register("oracle", New)
}

// New builds an oracle-backed hypervisor on top of the simulator core.
func New(cfg hv.Config) (hv.Hypervisor, error) {
	inner, err := hvsim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Hyp{inner: inner.(*hvsim.Hyp)}, nil
}

// Hyp wraps the simulator backend, replacing the tracking capabilities of
// every VM it creates with oracle implementations.
type Hyp struct {
	inner *hvsim.Hyp
	vms   []hv.VirtualMachine
}

// Sim returns the underlying simulator hypervisor.
func (h *Hyp) Sim() *hypervisor.Hypervisor { return h.inner.Sim() }

func (h *Hyp) Name() string             { return "oracle" }
func (h *Hyp) Phys() *mem.PhysMem       { return h.inner.Phys() }
func (h *Hyp) Model() *costmodel.Model  { return h.inner.Model() }
func (h *Hyp) VMs() []hv.VirtualMachine { return append([]hv.VirtualMachine(nil), h.vms...) }

func (h *Hyp) CreateVM() (hv.VirtualMachine, error) {
	inner, err := h.inner.CreateVM()
	if err != nil {
		return nil, err
	}
	return h.wrap(inner.(*hvsim.VM)), nil
}

// NewVMFromSnapshot forks a captured VM into this hypervisor's (forked)
// physical memory. Oracle snapshots carry no observer state - capture
// refuses while logging is armed - so the fork starts with disarmed,
// freshly wired observers.
func (h *Hyp) NewVMFromSnapshot(snap hv.Snapshot) (hv.VirtualMachine, error) {
	inner, err := h.inner.NewVMFromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	return h.wrap(inner.(*hvsim.VM)), nil
}

// wrap installs the lifetime EPT observers into a simulator VM and tracks
// the oracle view. The on/off gates make Start/Stop free of EPT surgery
// (flag clears aside).
func (h *Hyp) wrap(inner *hvsim.VM) *VM {
	vm := &VM{VM: inner}
	svm := vm.Sim()
	svm.EPT.WriteObserver = func(gpa mem.GPA) {
		if vm.dirtyOn {
			if _, seen := vm.dirty[gpa]; !seen {
				vm.dirty[gpa] = struct{}{}
				vm.observeLog(gpa)
			}
		}
		if vm.accessOn {
			vm.accessed[gpa] = struct{}{}
		}
	}
	svm.EPT.ReadObserver = func(gpa mem.GPA) {
		if vm.accessOn {
			vm.accessed[gpa] = struct{}{}
		}
	}
	h.vms = append(h.vms, vm)
	return vm
}

// VM is an oracle VM: the simulator VM for execution, clocks and memory,
// with DirtyLog/AccessLog overridden to harvest from the observer sets.
type VM struct {
	*hvsim.VM

	dirtyOn  bool
	accessOn bool
	dirty    map[mem.GPA]struct{}
	accessed map[mem.GPA]struct{}
}

// StartDirtyLogging arms the oracle: a fresh dirty set and cleared EPT
// dirty flags (the generation bump invalidates cached translations, so
// every page's next write re-walks and is observed). No VMCS PML arming -
// the oracle has no buffer to fill.
func (vm *VM) StartDirtyLogging() {
	vm.dirty = make(map[mem.GPA]struct{})
	vm.dirtyOn = true
	vm.Sim().EPT.ClearDirty()
}

// StopDirtyLogging disarms the oracle and drops its set.
func (vm *VM) StopDirtyLogging() {
	vm.dirtyOn = false
	vm.dirty = nil
}

// CollectDirty returns the pages written since the last collection in
// ascending order and re-arms: per-page dirty-flag clears (each bumps the
// EPT generation) guarantee the next write per page is observed again.
func (vm *VM) CollectDirty() ([]mem.GPA, error) {
	if !vm.dirtyOn {
		return nil, nil
	}
	out := make([]mem.GPA, 0, len(vm.dirty))
	for gpa := range vm.dirty {
		out = append(out, gpa)
	}
	slices.Sort(out)
	ept := vm.Sim().EPT
	for _, gpa := range out {
		ept.ClearDirtyPage(gpa)
	}
	vm.dirty = make(map[mem.GPA]struct{})
	vm.observeDrain()
	return out, nil
}

// observeLog mirrors the simulator's per-entry PML append on the
// observability planes: the same trace kind (pml_log), the same metrics
// bridge observation (which is how the monitor's dirty-rate estimators
// see oracle runs), at zero cost - the oracle charges no virtual time, so
// the record's cost is 0 and no clock advances. Without this an oracle
// run is observationally blind: cross-backend diffs would attribute the
// entire dirty-tracking plane to "sim only".
func (vm *VM) observeLog(gpa mem.GPA) {
	v := vm.Sim().VCPU
	tr, ev := v.Tracer, v.Met
	if tr == nil && ev == nil {
		return
	}
	now := vm.Sim().Clock.Nanos()
	if tr.Enabled(trace.KindPMLLog) {
		tr.Emit(trace.Record{Kind: trace.KindPMLLog, VM: int32(v.ID),
			TS: now, Addr: uint64(gpa)})
	}
	ev.Observe(trace.KindPMLLog, now, 0, 0)
}

// observeDrain mirrors the simulator's PML-buffer drain on the
// observability planes: same trace kind (pml_drain), zero cost, and - like
// a sim drain that routes to the migration log rather than a guest ring -
// an Arg of zero ring copies. The oracle has no buffer, so kinds tied to
// buffer mechanics (pml_full, epml_full_irq, the occupancy gauge) stay
// absent by design; the cross-backend parity test carries that allowlist.
func (vm *VM) observeDrain() {
	v := vm.Sim().VCPU
	tr, ev := v.Tracer, v.Met
	if tr == nil && ev == nil {
		return
	}
	now := vm.Sim().Clock.Nanos()
	if tr.Enabled(trace.KindPMLDrain) {
		tr.Emit(trace.Record{Kind: trace.KindPMLDrain, VM: int32(v.ID), TS: now})
	}
	ev.Observe(trace.KindPMLDrain, now, 0, 0)
}

// StartAccessLogging arms read+write observation with cleared A/D flags.
func (vm *VM) StartAccessLogging() {
	vm.accessed = make(map[mem.GPA]struct{})
	vm.accessOn = true
	ept := vm.Sim().EPT
	ept.ClearDirty()
	ept.ClearAccessed()
}

// StopAccessLogging disarms access observation.
func (vm *VM) StopAccessLogging() {
	vm.accessOn = false
	vm.accessed = nil
}

// CollectAccessed returns every page touched since StartAccessLogging in
// ascending order and re-arms by clearing both flag planes.
func (vm *VM) CollectAccessed() ([]mem.GPA, error) {
	if !vm.accessOn {
		return nil, nil
	}
	out := make([]mem.GPA, 0, len(vm.accessed))
	for gpa := range vm.accessed {
		out = append(out, gpa)
	}
	slices.Sort(out)
	ept := vm.Sim().EPT
	ept.ClearDirty()
	ept.ClearAccessed()
	vm.accessed = make(map[mem.GPA]struct{})
	return out, nil
}

// CaptureSnapshot refuses while the oracle is armed: the observer sets are
// host-side harvest state, not VM state, and a fork must not inherit a
// half-collected interval.
func (vm *VM) CaptureSnapshot() (hv.Snapshot, error) {
	if vm.dirtyOn || vm.accessOn {
		return nil, fmt.Errorf("%w: oracle logging armed", hypervisor.ErrNotQuiescent)
	}
	return vm.VM.CaptureSnapshot()
}
