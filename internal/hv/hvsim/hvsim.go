// Package hvsim registers the cycle-accurate PML simulator as the "sim"
// backend of the hv interface. It is a thin adapter: every call delegates
// to internal/hypervisor and internal/cpu, whose structs expose public
// fields (VM.Clock, VCPU.Tracer, ...) and therefore cannot implement the
// accessor-method interfaces themselves.
//
// Code that genuinely needs the simulator - module loading, ring
// registration, fault wiring - unwraps the adapter through Sim()/SimCPU()
// instead of growing the portable interface.
package hvsim

import (
	"repro/internal/costmodel"
	"repro/internal/cpu"
	"repro/internal/faults"
	"repro/internal/hv"
	"repro/internal/hypervisor"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	hv.Register("sim", New)
}

// New builds a simulator-backed hypervisor.
func New(cfg hv.Config) (hv.Hypervisor, error) {
	model := cfg.Model
	if model == nil {
		model = costmodel.Default()
	}
	phys := cfg.Phys
	if phys == nil {
		phys = mem.NewPhysMem(cfg.HostMemBytes)
	}
	return &Hyp{sim: hypervisor.New(phys, model)}, nil
}

// Hyp adapts *hypervisor.Hypervisor to hv.Hypervisor.
type Hyp struct {
	sim *hypervisor.Hypervisor
	vms []hv.VirtualMachine
}

// Sim returns the underlying simulator hypervisor.
func (h *Hyp) Sim() *hypervisor.Hypervisor { return h.sim }

func (h *Hyp) Name() string            { return "sim" }
func (h *Hyp) Phys() *mem.PhysMem      { return h.sim.Phys }
func (h *Hyp) Model() *costmodel.Model { return h.sim.Model }

func (h *Hyp) CreateVM() (hv.VirtualMachine, error) {
	svm, err := h.sim.CreateVM()
	if err != nil {
		return nil, err
	}
	vm := &VM{hyp: h, sim: svm}
	h.vms = append(h.vms, vm)
	return vm, nil
}

func (h *Hyp) VMs() []hv.VirtualMachine { return append([]hv.VirtualMachine(nil), h.vms...) }

// adopt wraps an already-created simulator VM (snapshot forks enter here).
func (h *Hyp) adopt(svm *hypervisor.VM) hv.VirtualMachine {
	vm := &VM{hyp: h, sim: svm}
	h.vms = append(h.vms, vm)
	return vm
}

// NewVMFromSnapshot installs a forked VM replaying snap (a snapshot taken
// by this backend) into h's - typically forked - physical memory.
func (h *Hyp) NewVMFromSnapshot(snap hv.Snapshot) (hv.VirtualMachine, error) {
	s, err := unwrapSnapshot(snap)
	if err != nil {
		return nil, err
	}
	svm, err := h.sim.NewVMFromSnapshot(s)
	if err != nil {
		return nil, err
	}
	return h.adopt(svm), nil
}

// VM adapts *hypervisor.VM. It implements hv.DirtyLog and hv.AccessLog.
type VM struct {
	hyp  *Hyp
	sim  *hypervisor.VM
	vcpu *VCPU // lazily built; sim.VCPU never changes
}

// Sim returns the underlying simulator VM. Consumers assert for
// interface{ Sim() *hypervisor.VM } when they need simulator-only surface
// (module loading, shared rings, EPT/VMCS poking in tests).
func (vm *VM) Sim() *hypervisor.VM { return vm.sim }

func (vm *VM) ID() int           { return vm.sim.ID }
func (vm *VM) Clock() *sim.Clock { return vm.sim.Clock }

func (vm *VM) VCPU() hv.VirtualCPU {
	if vm.vcpu == nil {
		vm.vcpu = &VCPU{sim: vm.sim.VCPU}
	}
	return vm.vcpu
}

func (vm *VM) MappedCount() int       { return vm.sim.EPT.Mapped() }
func (vm *VM) MappedPages() []mem.GPA { return vm.sim.MappedPages() }

func (vm *VM) CaptureSnapshot() (hv.Snapshot, error) { return vm.sim.CaptureSnapshot() }

func (vm *VM) RestoreSnapshot(snap hv.Snapshot) error {
	s, err := unwrapSnapshot(snap)
	if err != nil {
		return err
	}
	return vm.sim.RestoreSnapshot(s)
}

func unwrapSnapshot(snap hv.Snapshot) (*hypervisor.VMSnapshot, error) {
	s, ok := snap.(*hypervisor.VMSnapshot)
	if !ok {
		return nil, hv.ErrForeignSnapshot("sim", snap)
	}
	return s, nil
}

// DirtyLog: straight delegation - the simulator's migration dirty log is
// the capability's reference implementation.

func (vm *VM) StartDirtyLogging()               { vm.sim.StartDirtyLogging() }
func (vm *VM) StopDirtyLogging()                { vm.sim.StopDirtyLogging() }
func (vm *VM) CollectDirty() ([]mem.GPA, error) { return vm.sim.CollectDirty() }

// AccessLog: PML-R arming, the sequence wss.Estimator historically open-
// coded - dirty logging plus cleared accessed flags plus read logging, so
// the first touch (read or write) of every page lands in the PML buffer.

func (vm *VM) StartAccessLogging() {
	vm.sim.StartDirtyLogging()
	vm.sim.EPT.ClearAccessed()
	vm.sim.VCPU.PMLLogReads = true
}

func (vm *VM) StopAccessLogging() {
	vm.sim.VCPU.PMLLogReads = false
	vm.sim.StopDirtyLogging()
}

func (vm *VM) CollectAccessed() ([]mem.GPA, error) { return vm.sim.CollectDirty() }

// VCPU adapts *cpu.VCPU, whose public fields collide with the accessor
// names the interface requires.
type VCPU struct {
	sim *cpu.VCPU
}

// Sim returns the underlying simulator vCPU.
func (v *VCPU) Sim() *cpu.VCPU { return v.sim }

func (v *VCPU) ID() int                    { return v.sim.ID }
func (v *VCPU) Clock() *sim.Clock          { return v.sim.Clock }
func (v *VCPU) Counters() *sim.Counters    { return &v.sim.Counters }
func (v *VCPU) Tracer() *trace.Tracer      { return v.sim.Tracer }
func (v *VCPU) Injector() *faults.Injector { return v.sim.Inj }
func (v *VCPU) Metrics() *metrics.Events   { return v.sim.Met }
func (v *VCPU) Profiler() *prof.Tap        { return v.sim.Prof }
func (v *VCPU) Monitor() *monitor.Monitor  { return v.sim.Mon }

func (v *VCPU) FaultRecord(p faults.Point, addr uint64) { v.sim.FaultRecord(p, addr) }

func (v *VCPU) KernelReadGPA(gpa mem.GPA, b []byte) error  { return v.sim.KernelReadGPA(gpa, b) }
func (v *VCPU) KernelWriteGPA(gpa mem.GPA, b []byte) error { return v.sim.KernelWriteGPA(gpa, b) }
