package conformance

import (
	"bytes"
	"slices"
	"testing"

	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/wss"
)

// forEachBackend runs scenario once per registered backend, as a subtest
// named after it. Every registered backend must pass every scenario that
// exercises a capability it advertises; capabilities a backend does not
// advertise skip its subtest (like a KVM_CAP probe coming back 0).
func forEachBackend(t *testing.T, scenario func(t *testing.T, backend string)) {
	t.Helper()
	names := hv.Backends()
	if len(names) == 0 {
		t.Fatal("no hv backends registered")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) { scenario(t, name) })
	}
}

// boot builds a one-guest machine on the named backend with pages of
// populated, eagerly mapped memory in a fresh process.
func boot(t *testing.T, backend string, pages int) (*machine.Guest, *guestos.Process, mem.GVA) {
	t.Helper()
	m, err := machine.New(machine.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return g, proc, region.Start
}

// gpaOf translates a page's GVA through the process page table.
func gpaOf(t *testing.T, proc *guestos.Process, gva mem.GVA) mem.GPA {
	t.Helper()
	gpa, err := proc.PT.Translate(gva)
	if err != nil {
		t.Fatal(err)
	}
	return gpa
}

// TestDirtyLogExactSets pins the core DirtyLog contract: CollectDirty
// returns exactly the pages written since the previous collection, in
// ascending GPA order, and re-arms them - a rewrite after a collect is
// logged again, an untouched interval collects empty.
func TestDirtyLogExactSets(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		g, proc, base := boot(t, backend, 64)
		dl, ok := g.VM.(hv.DirtyLog)
		if !ok {
			t.Skipf("backend %q does not advertise DirtyLog", backend)
		}
		dl.StartDirtyLogging()
		defer dl.StopDirtyLogging()

		want := []mem.GPA{}
		for _, p := range []uint64{3, 9, 27} {
			gva := base.Add(p * mem.PageSize)
			if err := proc.WriteU64(gva, p); err != nil {
				t.Fatal(err)
			}
			want = append(want, gpaOf(t, proc, gva))
		}
		slices.Sort(want)

		got, err := dl.CollectDirty()
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Errorf("CollectDirty = %v, want %v", got, want)
		}
		if !slices.IsSorted(got) {
			t.Errorf("CollectDirty not sorted: %v", got)
		}

		// Untouched interval: nothing to report.
		if got, err = dl.CollectDirty(); err != nil {
			t.Fatal(err)
		} else if len(got) != 0 {
			t.Errorf("empty interval collected %v", got)
		}

		// Re-arm: a page collected once must be re-logged when rewritten.
		gva := base.Add(9 * mem.PageSize)
		if err := proc.WriteU64(gva, 99); err != nil {
			t.Fatal(err)
		}
		if got, err = dl.CollectDirty(); err != nil {
			t.Fatal(err)
		} else if !slices.Equal(got, []mem.GPA{gpaOf(t, proc, gva)}) {
			t.Errorf("re-armed collect = %v, want the rewritten page only", got)
		}
	})
}

// TestDirtyLogStartHygiene pins the state-hygiene bugfix sweep's dirty-log
// contract: StopDirtyLogging discards the uncollected log, and a fresh
// StartDirtyLogging begins with a clean slate - pages dirtied before or
// between sessions never leak into the next session's first collect.
func TestDirtyLogStartHygiene(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		g, proc, base := boot(t, backend, 16)
		dl, ok := g.VM.(hv.DirtyLog)
		if !ok {
			t.Skipf("backend %q does not advertise DirtyLog", backend)
		}
		write := func(page uint64) mem.GVA {
			gva := base.Add(page * mem.PageSize)
			if err := proc.WriteU64(gva, page); err != nil {
				t.Fatal(err)
			}
			return gva
		}

		dl.StartDirtyLogging()
		write(1) // dirtied, never collected
		dl.StopDirtyLogging()
		write(2) // dirtied while logging is off

		dl.StartDirtyLogging()
		defer dl.StopDirtyLogging()
		gva := write(3)
		got, err := dl.CollectDirty()
		if err != nil {
			t.Fatal(err)
		}
		if want := []mem.GPA{gpaOf(t, proc, gva)}; !slices.Equal(got, want) {
			t.Errorf("first collect of a fresh session = %v, want %v (stale state leaked)", got, want)
		}
	})
}

// TestAccessLogIntervals pins the AccessLog/wss contract: an interval's
// sample counts read-only pages as well as written ones, and intervals are
// independent - the second interval sees only its own touches.
func TestAccessLogIntervals(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		g, proc, base := boot(t, backend, 128)
		if _, ok := g.VM.(hv.AccessLog); !ok {
			t.Skipf("backend %q does not advertise AccessLog", backend)
		}
		est := wss.New(g.VM)

		est.BeginInterval()
		for p := uint64(0); p < 10; p++ {
			if err := proc.WriteU64(base.Add(p*mem.PageSize), p); err != nil {
				t.Fatal(err)
			}
		}
		for p := uint64(10); p < 40; p++ {
			if _, err := proc.ReadU64(base.Add(p * mem.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
		s, err := est.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if s.Pages != 40 {
			t.Errorf("interval 1: WSS = %d pages, want 40 (reads must count)", s.Pages)
		}

		est.BeginInterval()
		for p := uint64(50); p < 55; p++ {
			if _, err := proc.ReadU64(base.Add(p * mem.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
		if s, err = est.EndInterval(); err != nil {
			t.Fatal(err)
		} else if s.Pages != 5 {
			t.Errorf("interval 2: WSS = %d pages, want 5 (intervals must be independent)", s.Pages)
		}
	})
}

// TestMigrationConverges runs a full pre-copy live migration on each
// backend, with a write racing the copy rounds, and checks the final image
// against live guest memory page by page.
func TestMigrationConverges(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		g, proc, base := boot(t, backend, 96)
		if _, ok := g.VM.(hv.DirtyLog); !ok {
			t.Skipf("backend %q does not advertise DirtyLog", backend)
		}
		image, stats, err := migration.Migrate(g.VM, migration.Options{}, func(round int) error {
			return proc.WriteU64(base, 0xA5A5_0000+uint64(round))
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds < 1 || stats.UniquePages == 0 {
			t.Fatalf("implausible stats %+v", stats)
		}
		for gpa, want := range image {
			got := make([]byte, mem.PageSize)
			if err := g.VM.VCPU().KernelReadGPA(gpa, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("migrated page %v differs from live memory", gpa)
			}
		}
	})
}

// TestForkIsolation pins the snapshot/fork contract per backend: a fork
// reads the captured bytes, its writes never reach the parent, and dirty
// logging works in the fork from a clean slate.
func TestForkIsolation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		m, err := machine.New(machine.Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		g := m.Guest(0)
		proc := g.Kernel.Spawn("app")
		region, err := proc.Mmap(8*mem.PageSize, true)
		if err != nil {
			t.Fatal(err)
		}
		base := region.Start
		for p := uint64(0); p < 8; p++ {
			if err := proc.WriteU64(base.Add(p*mem.PageSize), 0x1000+p); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := m.CaptureSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		fm, err := snap.Fork(machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		fg := fm.Guest(0)
		fproc, ok := fg.Kernel.Process(proc.Pid)
		if !ok {
			t.Fatalf("fork lost pid %d", proc.Pid)
		}

		// The fork reads the captured bytes.
		for p := uint64(0); p < 8; p++ {
			v, err := fproc.ReadU64(base.Add(p * mem.PageSize))
			if err != nil {
				t.Fatal(err)
			}
			if v != 0x1000+p {
				t.Errorf("fork page %d reads %#x, want %#x", p, v, 0x1000+p)
			}
		}

		// Fork writes diverge privately: the parent never sees them.
		if err := fproc.WriteU64(base, 0xDEAD); err != nil {
			t.Fatal(err)
		}
		if v, err := proc.ReadU64(base); err != nil {
			t.Fatal(err)
		} else if v != 0x1000 {
			t.Errorf("parent page 0 reads %#x after fork write, want %#x", v, 0x1000)
		}

		// Dirty logging in the fork starts from a clean slate.
		if dl, ok := fg.VM.(hv.DirtyLog); ok {
			dl.StartDirtyLogging()
			defer dl.StopDirtyLogging()
			gva := base.Add(5 * mem.PageSize)
			if err := fproc.WriteU64(gva, 0xBEEF); err != nil {
				t.Fatal(err)
			}
			got, err := dl.CollectDirty()
			if err != nil {
				t.Fatal(err)
			}
			if want := []mem.GPA{gpaOf(t, fproc, gva)}; !slices.Equal(got, want) {
				t.Errorf("fork CollectDirty = %v, want %v", got, want)
			}
		}
	})
}
