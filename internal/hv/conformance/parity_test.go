package conformance

import (
	"fmt"
	"testing"

	"repro/internal/hv"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// pmlBufferOnly is the documented allowlist for the cross-backend
// observability parity contract: the only observations the "sim" backend
// may emit that the "oracle" backend never does are the ones tied to the
// physical PML buffer the oracle does not have. Everything else a dirty-
// tracking run observes must appear under both backends, or cross-backend
// diffs would attribute the whole tracking plane to "sim only".
var (
	// Trace kinds that only exist because a finite buffer fills.
	pmlBufferOnlyKinds = map[string]bool{
		"pml_full":      true, // buffer-full vmexit
		"epml_full_irq": true, // guest-buffer-full posted self-IPI
	}
	// Counters that only move on buffer-full vmexits. (The pooled
	// cpu/vmexits_total counter is NOT listed: both backends take
	// non-PML vmexits, so it must appear under both.)
	pmlBufferOnlyCounters = map[string]bool{
		"cpu/vmexits_by_reason{PML_FULL}": true,
	}
	// Gauges tracking buffer state.
	pmlBufferOnlyGauges = map[string]bool{
		"cpu/pml_buffer_occupancy{}": true,
	}
)

// dirtyMix drives a canned dirty-tracking mix on the named backend with
// the metrics plane attached and returns the observed (non-zero) event
// kinds, counter keys and gauge keys. The mix deliberately writes more
// than one PML buffer's worth of distinct pages in its first interval so
// the sim backend exercises its buffer-full path.
func dirtyMix(t *testing.T, backend string) (kinds, counters, gauges map[string]bool, pmlLogs int64) {
	t.Helper()
	const pages = 600 // > vmcs.PMLBufferEntries (512)
	reg := metrics.NewRegistry()
	m, err := machine.New(machine.Config{Backend: backend, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Guest(0)
	proc := g.Kernel.Spawn("app")
	region, err := proc.Mmap(uint64(pages)*mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for p := 0; p < pages; p++ {
		if err := proc.WriteU64(region.Start.Add(uint64(p)*mem.PageSize), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}

	dl, ok := g.VM.(hv.DirtyLog)
	if !ok {
		t.Fatalf("backend %q does not advertise DirtyLog", backend)
	}
	dl.StartDirtyLogging()
	defer dl.StopDirtyLogging()
	// Round 1: every page, overflowing sim's buffer. Rounds 2-3: shrinking
	// subsets, so re-arming after collect is observed too.
	for round, stride := range []int{1, 3, 7} {
		for p := 0; p < pages; p += stride {
			gva := region.Start.Add(uint64(p) * mem.PageSize)
			if err := proc.WriteU64(gva, uint64(round)<<32|uint64(p)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := dl.CollectDirty(); err != nil {
			t.Fatal(err)
		}
	}

	kinds = map[string]bool{}
	counters = map[string]bool{}
	gauges = map[string]bool{}
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		if c.Value == 0 {
			continue
		}
		switch c.Name {
		case metrics.NameEvents:
			kinds[c.Label] = true
			if c.Label == "pml_log" {
				pmlLogs = c.Value
			}
		case metrics.NameEventArgSum:
			// Folded into the kind set: an arg sum can only be non-zero for
			// an observed kind.
			kinds[c.Label] = true
		default:
			counters[fmt.Sprintf("%s/%s{%s}", c.Subsystem, c.Name, c.Label)] = true
		}
	}
	for _, gg := range snap.Gauges {
		if gg.Value != 0 {
			gauges[fmt.Sprintf("%s/%s{%s}", gg.Subsystem, gg.Name, gg.Label)] = true
		}
	}
	return kinds, counters, gauges, pmlLogs
}

// TestOracleDirtyLogObservability is the regression guard for the parity
// fix: a pure dirty-tracking run under OOH_BACKEND=oracle (resolved via
// the environment, the way experiment drivers pick the backend) must emit
// the bridge-mapped pml_log and pml_drain observations. Before the fix
// the oracle harvested through host maps without touching any plane, so
// this run observed nothing at all.
func TestOracleDirtyLogObservability(t *testing.T) {
	t.Setenv("OOH_BACKEND", "oracle")
	kinds, _, _, pmlLogs := dirtyMix(t, "") // "" = resolve from OOH_BACKEND
	if !kinds["pml_log"] {
		t.Error("oracle run observed no pml_log events")
	}
	if !kinds["pml_drain"] {
		t.Error("oracle run observed no pml_drain events")
	}
	if pmlLogs == 0 {
		t.Error("oracle run's pml_log event counter is zero")
	}
	for k := range kinds {
		if pmlBufferOnlyKinds[k] {
			t.Errorf("oracle run observed buffer-only kind %q (it has no PML buffer)", k)
		}
	}
}

// TestBackendObservabilityParity pins the cross-backend contract: the
// same canned dirty-tracking mix observed under "sim" and under "oracle"
// yields the same event kinds, counter keys and gauge keys, except for
// the documented PML-buffer-only allowlist - and the per-interval dirty
// logging discipline is identical, so the pml_log event counts match
// exactly (one log per page per arming interval on both backends).
func TestBackendObservabilityParity(t *testing.T) {
	simKinds, simCtrs, simGauges, simLogs := dirtyMix(t, "sim")
	oraKinds, oraCtrs, oraGauges, oraLogs := dirtyMix(t, "oracle")

	// The mix overflows one PML buffer, so the allowlist must actually be
	// exercised on the sim side - otherwise this test proves nothing.
	if !simKinds["pml_full"] {
		t.Fatal("canned mix did not overflow the sim PML buffer; grow it")
	}

	diff := func(plane string, simSet, oraSet, allow map[string]bool) {
		for k := range simSet {
			if !oraSet[k] && !allow[k] {
				t.Errorf("%s %q observed under sim but not oracle (and not allowlisted)", plane, k)
			}
		}
		for k := range oraSet {
			if !simSet[k] {
				t.Errorf("%s %q observed under oracle but not sim", plane, k)
			}
			if allow[k] {
				t.Errorf("%s %q is allowlisted as buffer-only but the oracle observed it", plane, k)
			}
		}
	}
	diff("kind", simKinds, oraKinds, pmlBufferOnlyKinds)
	diff("counter", simCtrs, oraCtrs, pmlBufferOnlyCounters)
	diff("gauge", simGauges, oraGauges, pmlBufferOnlyGauges)

	if simLogs != oraLogs {
		t.Errorf("pml_log event counts diverge: sim %d, oracle %d (both should log each page once per interval)", simLogs, oraLogs)
	}
}
