// Package conformance holds the backend conformance suite: black-box
// scenario tests that iterate every registered hv backend and pin the
// contract the consumers (tracking, migration, wss, snapshot/fork) rely
// on - exact sorted dirty sets, re-arm on collect, state hygiene across
// Stop/Start, read+write access logging, migration correctness and
// copy-on-write fork isolation. A new backend passes this suite or it is
// not a backend.
package conformance
