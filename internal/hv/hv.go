// Package hv is the hypervisor abstraction seam of the reproduction: the
// narrow interface that machine, migration, wss and the experiment drivers
// program against, with concrete backends registered behind it.
//
// The paper's contribution is exposing a hardware tracking feature (PML)
// through a clean hypervisor/guest contract; this package is that contract
// on the host side, shaped after how tinyrange/cc abstracts KVM/HVF/WHP:
// a Hypervisor creates VirtualMachines, a VirtualMachine exposes its
// VirtualCPU and snapshot/restore, and optional capabilities (DirtyLog,
// AccessLog) are discovered by type assertion - exactly like querying a
// KVM_CAP. Two backends register at import time:
//
//   - "sim" (package hvsim): the cycle-accurate PML simulator - vmexits,
//     PML buffer drains, hypercall costs, the works.
//   - "oracle" (package hvoracle): a perfect dirty-bit oracle layered on
//     the same simulator core. It observes EPT write walks directly and
//     charges no PML cost at all, giving a lower bound to compare every
//     real technique against (the ARM-DBM-style "scan dirty bits for
//     free" ideal).
package hv

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config carries what every backend needs to build a Hypervisor.
type Config struct {
	// HostMemBytes bounds simulated host DRAM (0 = unlimited).
	HostMemBytes uint64
	// Model is the calibrated cost model; nil means the backend default.
	Model *costmodel.Model
	// Phys, when non-nil, is a pre-built host physical memory the backend
	// adopts instead of allocating its own - the snapshot-fork path hands
	// a copy-on-write forked image in here. HostMemBytes is ignored then.
	Phys *mem.PhysMem
}

// Hypervisor is one host-wide hypervisor instance.
type Hypervisor interface {
	// Name returns the backend's registered name.
	Name() string
	// Phys returns the host physical memory all VMs share.
	Phys() *mem.PhysMem
	// Model returns the cost model the backend charges from.
	Model() *costmodel.Model
	// CreateVM builds a VM with one vCPU.
	CreateVM() (VirtualMachine, error)
	// VMs returns the created VMs in creation order.
	VMs() []VirtualMachine
}

// VirtualMachine is one VM. Optional capabilities - DirtyLog, AccessLog -
// are discovered by type assertion.
type VirtualMachine interface {
	// ID returns the VM's stable identifier.
	ID() int
	// Clock returns the VM's virtual clock.
	Clock() *sim.Clock
	// VCPU returns the VM's (single) virtual CPU.
	VCPU() VirtualCPU
	// MappedCount returns the number of mapped guest frames.
	MappedCount() int
	// MappedPages returns the mapped guest frames in ascending GPA order.
	MappedPages() []mem.GPA
	// CaptureSnapshot captures the VM's state above physical memory. It
	// fails when live wiring (rings, write hooks) makes the VM
	// non-quiescent.
	CaptureSnapshot() (Snapshot, error)
	// RestoreSnapshot rewinds the VM to a captured state. Physical memory
	// is restored separately (the machine layer composes the two).
	RestoreSnapshot(snap Snapshot) error
}

// Snapshot is an opaque backend-specific VM snapshot handle: only the
// backend that captured it can restore it.
type Snapshot interface{}

// VirtualCPU exposes the per-vCPU state consumers need: identity, the
// virtual clock, the observability planes, and the kernel-mode physical
// access path (which bypasses guest translation and dirty logging on every
// backend, like a hypervisor-side memcpy).
type VirtualCPU interface {
	ID() int
	Clock() *sim.Clock
	Counters() *sim.Counters
	Tracer() *trace.Tracer
	Injector() *faults.Injector
	Metrics() *metrics.Events
	Profiler() *prof.Tap
	Monitor() *monitor.Monitor
	// FaultRecord emits the trace/metrics record for an injected fault
	// that fired at this vCPU (no-op when observability is off).
	FaultRecord(p faults.Point, addr uint64)
	KernelReadGPA(gpa mem.GPA, b []byte) error
	KernelWriteGPA(gpa mem.GPA, b []byte) error
}

// DirtyLog is the hypervisor-level dirty page tracking capability (live
// migration's pre-copy loop). CollectDirty returns the pages dirtied since
// the previous collection in ascending GPA order and re-arms tracking for
// them; a failed collect loses nothing (the log survives for a retry).
type DirtyLog interface {
	StartDirtyLogging()
	StopDirtyLogging()
	CollectDirty() ([]mem.GPA, error)
}

// AccessLog is the read+write page tracking capability behind working-set
// estimation (the PML-R extension): CollectAccessed returns every page
// touched - read or written - since StartAccessLogging, sorted.
type AccessLog interface {
	StartAccessLogging()
	StopAccessLogging()
	CollectAccessed() ([]mem.GPA, error)
}

// Forker is the optional Hypervisor capability behind VM forking: it
// replays a captured VM Snapshot into this hypervisor's (typically
// copy-on-write forked) physical memory as a newly installed VM.
type Forker interface {
	NewVMFromSnapshot(snap Snapshot) (VirtualMachine, error)
}

// ErrForeignSnapshot builds the error a backend returns when asked to
// restore a Snapshot it did not capture (snapshots never cross backends).
func ErrForeignSnapshot(backend string, snap Snapshot) error {
	return fmt.Errorf("hv: backend %q cannot restore snapshot of type %T", backend, snap)
}

// Factory builds a backend Hypervisor.
type Factory func(Config) (Hypervisor, error)

var (
	regMu    sync.Mutex
	backends = map[string]Factory{}
)

// Register installs a backend factory under name. Backends call it from
// package init; a duplicate name panics (two packages claiming one name is
// a build-wiring bug).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("hv: backend %q registered twice", name))
	}
	backends[name] = f
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultBackend returns the backend used when none is named: the
// OOH_BACKEND environment variable when set (the conformance CI runs every
// suite under each value), otherwise "sim".
func DefaultBackend() string {
	if name := os.Getenv("OOH_BACKEND"); name != "" {
		return name
	}
	return "sim"
}

// New builds the named backend ("" means DefaultBackend).
func New(name string, cfg Config) (Hypervisor, error) {
	if name == "" {
		name = DefaultBackend()
	}
	regMu.Lock()
	f := backends[name]
	regMu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("hv: unknown backend %q (have %v)", name, Backends())
	}
	return f(cfg)
}
